package hybrid

import (
	"math"
	"testing"

	"ps2stream/internal/geo"
	"ps2stream/internal/load"
	"ps2stream/internal/model"
	"ps2stream/internal/partition"
)

func sampleUnit(t *testing.T, seed int64, nObj, nQry int) (*unit, *partition.Sample) {
	t.Helper()
	s := mixedSample(t, seed, nObj, nQry)
	u := &unit{
		bounds:  s.Bounds,
		kind:    kindNs,
		objects: s.Objects,
		queries: s.Queries,
	}
	u.computeLoad(load.DefaultCosts)
	return u, s
}

func TestSplitUnitSpatiallyPartitionsObjects(t *testing.T) {
	u, _ := sampleUnit(t, 50, 1000, 200)
	for dim := 0; dim < 2; dim++ {
		a, b, ok := splitUnitSpatially(u, dim, DefaultConfig())
		if !ok {
			t.Fatalf("dim %d: split failed", dim)
		}
		if len(a.objects)+len(b.objects) != len(u.objects) {
			t.Errorf("dim %d: objects %d+%d != %d", dim, len(a.objects), len(b.objects), len(u.objects))
		}
		// Bounds tile the parent.
		if math.Abs(a.bounds.Area()+b.bounds.Area()-u.bounds.Area()) > 1e-9 {
			t.Errorf("dim %d: child areas do not tile parent", dim)
		}
		// Each object sits inside its side's bounds.
		for _, o := range a.objects {
			if !a.bounds.Contains(o.Loc) {
				t.Fatalf("dim %d: left object %v outside %v", dim, o.Loc, a.bounds)
			}
		}
		// Every parent query overlapping a child's bounds is in that
		// child (duplication is expected, loss is not).
		for _, q := range u.queries {
			if q.Region.Intersects(a.bounds) && !containsQuery(a.queries, q.ID) {
				t.Fatalf("dim %d: query %d lost from left child", dim, q.ID)
			}
			if q.Region.Intersects(b.bounds) && !containsQuery(b.queries, q.ID) {
				t.Fatalf("dim %d: query %d lost from right child", dim, q.ID)
			}
		}
	}
}

func containsQuery(qs []*model.Query, id uint64) bool {
	for _, q := range qs {
		if q.ID == id {
			return true
		}
	}
	return false
}

func TestSplitUnitSpatiallyDegenerate(t *testing.T) {
	u := &unit{bounds: geo.NewRect(0, 0, 10, 10), kind: kindNs}
	for i := 0; i < 10; i++ {
		u.objects = append(u.objects, &model.Object{ID: uint64(i), Loc: geo.Point{X: 5, Y: 5}})
	}
	if _, _, ok := splitUnitSpatially(u, 0, DefaultConfig()); ok {
		t.Error("split succeeded on co-located objects")
	}
	empty := &unit{bounds: geo.NewRect(0, 0, 1, 1)}
	if _, _, ok := splitUnitSpatially(empty, 0, DefaultConfig()); ok {
		t.Error("split succeeded on empty unit")
	}
}

func TestSplitUnitByTextCoversQueries(t *testing.T) {
	u, s := sampleUnit(t, 51, 2000, 400)
	parts := splitUnitByText(u, 4, s.Stats, DefaultConfig())
	if parts == nil {
		t.Fatal("text split failed")
	}
	if len(parts) != 4 {
		t.Fatalf("got %d parts", len(parts))
	}
	// Key sets are disjoint.
	seen := map[string]int{}
	for i, p := range parts {
		for k := range p.keys {
			if prev, dup := seen[k]; dup {
				t.Fatalf("key %q in parts %d and %d", k, prev, i)
			}
			seen[k] = i
		}
	}
	// Every query with at least one registration key appears in the part
	// owning that key.
	for _, q := range u.queries {
		for _, k := range s.Stats.RegistrationKeys(q.Expr.Conj) {
			p, ok := seen[k]
			if !ok {
				continue // key had no queries in the sample grouping
			}
			if !containsQuery(parts[p].queries, q.ID) {
				t.Fatalf("query %d (key %q) missing from part %d", q.ID, k, p)
			}
		}
	}
	// Objects carrying a key land in the owning part.
	for _, o := range u.objects[:200] {
		for _, term := range o.Terms {
			p, ok := seen[term]
			if !ok {
				continue
			}
			found := false
			for _, po := range parts[p].objects {
				if po.ID == o.ID {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("object %d with key %q missing from part %d", o.ID, term, p)
			}
		}
	}
}

func TestSplitUnitByTextTooFewKeys(t *testing.T) {
	s := mixedSample(t, 52, 100, 1)
	u := &unit{bounds: s.Bounds, kind: kindNt, objects: s.Objects, queries: s.Queries[:1]}
	if parts := splitUnitByText(u, 4, s.Stats, DefaultConfig()); parts != nil {
		t.Errorf("split into 4 with one query's keys should fail, got %d parts", len(parts))
	}
}

// The DP must beat (or match) the naive equal-split on total load for
// every instance, since equal split is in its search space.
func TestComputeNumberPartitionsBeatsEqualSplit(t *testing.T) {
	s := mixedSample(t, 53, 3000, 500)
	cfg := DefaultConfig()
	cfg.Theta = 64
	mid := s.Bounds.Min.X + s.Bounds.Width()/2
	left := &unit{bounds: geo.NewRect(s.Bounds.Min.X, s.Bounds.Min.Y, mid, s.Bounds.Max.Y), kind: kindNt}
	right := &unit{bounds: geo.NewRect(mid, s.Bounds.Min.Y, s.Bounds.Max.X, s.Bounds.Max.Y), kind: kindNs}
	for _, n := range []*unit{left, right} {
		for _, o := range s.Objects {
			if n.bounds.Contains(o.Loc) {
				n.objects = append(n.objects, o)
			}
		}
		for _, q := range s.Queries {
			if q.Region.Intersects(n.bounds) {
				n.queries = append(n.queries, q)
			}
		}
		n.computeLoad(cfg.Costs)
	}
	nodes := []*unit{left, right}
	m := 8
	counts := computeNumberPartitions(nodes, m, s.Stats, cfg)
	dpTotal := 0.0
	for i, n := range nodes {
		dpTotal += totalLoad(partitionNode(n, counts[i], s.Stats, cfg))
	}
	eqTotal := 0.0
	for _, n := range nodes {
		eqTotal += totalLoad(partitionNode(n, m/2, s.Stats, cfg))
	}
	t.Logf("DP counts=%v total=%.0f, equal-split total=%.0f", counts, dpTotal, eqTotal)
	if dpTotal > eqTotal*1.001 {
		t.Errorf("DP total %.0f worse than equal split %.0f", dpTotal, eqTotal)
	}
}

func TestPartitionNodeSingle(t *testing.T) {
	u, s := sampleUnit(t, 54, 200, 50)
	parts := partitionNode(u, 1, s.Stats, DefaultConfig())
	if len(parts) != 1 || parts[0] != u {
		t.Error("p=1 must return the node unchanged")
	}
}

func TestSimtRange(t *testing.T) {
	u, _ := sampleUnit(t, 55, 500, 100)
	sim := simt(u.objects, u.queries)
	if sim < 0 || sim > 1.0001 {
		t.Errorf("simt = %v out of range", sim)
	}
	if got := simt(nil, u.queries); got != 0 {
		t.Errorf("simt with no objects = %v", got)
	}
}
