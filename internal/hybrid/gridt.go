package hybrid

import (
	"hash/fnv"
	"math/bits"
	"reflect"
	"sort"
	"sync"

	"ps2stream/internal/geo"
	"ps2stream/internal/index/grid"
	"ps2stream/internal/model"
	"ps2stream/internal/partition"
	"ps2stream/internal/textutil"
)

// GridT is the dispatcher-side index of §IV-C: a uniform grid where each
// cell carries two hash maps, H1 (the complete term partition: term →
// worker) and H2 (registration keys of live queries → worker). Cells
// covered by a space-partitioned kdt-tree leaf store a single worker and a
// trivial H1; cells under text-partitioned leaves resolve terms through H1
// with a deterministic hash fallback for unseen terms.
//
// GridT implements partition.Assignment and additionally supports the cell
// mutations required by dynamic load adjustment (§V): reassigning a space
// cell, reassigning a worker's text share, splitting a space cell by text,
// and merging text shares.
type GridT struct {
	m     int
	g     *grid.Grid
	stats *textutil.Stats

	// mus stripes the cell locks: a cell's lock is mus[cell % lockStripes],
	// so the four dispatcher tasks rarely contend.
	mus   [lockStripes]sync.RWMutex
	cells []gridtCell
}

// lockStripes is the number of lock stripes (power of two).
const lockStripes = 64

// lockFor returns the stripe lock guarding the cell.
func (gt *GridT) lockFor(cell int) *sync.RWMutex {
	return &gt.mus[cell&(lockStripes-1)]
}

type gridtCell struct {
	// worker is the owning worker for space cells, or -1 for text cells.
	worker int
	// h1 maps terms to workers for text cells. It may be shared between
	// cells built from the same kdt-tree leaf; sharedH1 marks it
	// copy-on-write.
	h1       map[string]int
	sharedH1 bool
	// fallback lists the candidate workers for terms absent from h1,
	// indexed by hash (text cells only).
	fallback []int
	// h2 tracks live registration keys: worker routed to and reference
	// count.
	h2 map[string]h2Entry
}

type h2Entry struct {
	worker int
	count  int
}

var _ partition.Assignment = (*GridT)(nil)

// buildGridT rasterises the final units onto the gridt index.
func buildGridT(s *partition.Sample, m int, cfg Config, units []*unit, owners []int) *GridT {
	g := grid.New(s.Bounds, cfg.Granularity, cfg.Granularity)
	gt := &GridT{m: m, g: g, stats: s.Stats, cells: make([]gridtCell, g.NumCells())}

	// Precompute shared H1 maps per sibling group of text units.
	type groupInfo struct {
		h1       map[string]int
		fallback []int
	}
	groups := make(map[*unit]*groupInfo) // keyed by first sibling
	ownerOf := make(map[*unit]int, len(units))
	for i, u := range units {
		ownerOf[u] = owners[i]
	}
	groupFor := func(u *unit) *groupInfo {
		sibs := u.siblings
		if len(sibs) == 0 {
			sibs = []*unit{u}
		}
		key := sibs[0]
		if gi, ok := groups[key]; ok {
			return gi
		}
		gi := &groupInfo{h1: make(map[string]int)}
		for _, sib := range sibs {
			w, ok := ownerOf[sib]
			if !ok {
				continue // sibling replaced by a later split; its children carry the keys
			}
			for k := range sib.keys {
				gi.h1[k] = w
			}
			gi.fallback = append(gi.fallback, w)
		}
		sort.Ints(gi.fallback)
		groups[key] = gi
		return gi
	}

	for id := 0; id < g.NumCells(); id++ {
		center := g.CellRect(id).Center()
		var covering []*unit
		for _, u := range units {
			if u.bounds.Contains(center) {
				covering = append(covering, u)
			}
		}
		c := &gt.cells[id]
		c.worker = 0
		c.h2 = nil // allocated lazily
		if len(covering) == 0 {
			// Float edge case: snap to the nearest unit.
			best, bestD := 0, -1.0
			for i, u := range units {
				d := rectDist(u.bounds, center)
				if bestD < 0 || d < bestD {
					best, bestD = i, d
				}
			}
			covering = []*unit{units[best]}
		}
		// Smallest-area covering units are the authoritative leaves
		// (same-bounds text siblings tie; a boundary-adjacent larger
		// node loses).
		minArea := covering[0].bounds.Area()
		for _, u := range covering[1:] {
			if a := u.bounds.Area(); a < minArea {
				minArea = a
			}
		}
		var leaves []*unit
		for _, u := range covering {
			if u.bounds.Area() <= minArea+1e-12 {
				leaves = append(leaves, u)
			}
		}
		if len(leaves) == 1 && !leaves[0].isText() {
			c.worker = ownerOf[leaves[0]]
			continue
		}
		// Text cell: merge the H1 info of every covering text group. The
		// common case is a single group, whose H1 map is shared across
		// all the leaf's cells (copy-on-write on later mutation).
		c.worker = -1
		seen := map[*groupInfo]bool{}
		var gis []*groupInfo
		var fb []int
		for _, u := range leaves {
			if !u.isText() {
				// A space leaf sharing bounds with text leaves should
				// not occur; treat its owner as a fallback route.
				fb = append(fb, ownerOf[u])
				continue
			}
			gi := groupFor(u)
			if seen[gi] {
				continue
			}
			seen[gi] = true
			gis = append(gis, gi)
			fb = append(fb, gi.fallback...)
		}
		switch len(gis) {
		case 0:
			c.h1 = map[string]int{}
		case 1:
			c.h1 = gis[0].h1
			c.sharedH1 = true
		default:
			merged := make(map[string]int)
			for _, gi := range gis {
				for k, w := range gi.h1 {
					merged[k] = w
				}
			}
			c.h1 = merged
		}
		if len(fb) == 0 {
			fb = []int{0}
		}
		sort.Ints(fb)
		c.fallback = fb
	}
	return gt
}

func rectDist(r geo.Rect, p geo.Point) float64 {
	dx := 0.0
	if p.X < r.Min.X {
		dx = r.Min.X - p.X
	} else if p.X > r.Max.X {
		dx = p.X - r.Max.X
	}
	dy := 0.0
	if p.Y < r.Min.Y {
		dy = r.Min.Y - p.Y
	} else if p.Y > r.Max.Y {
		dy = p.Y - r.Max.Y
	}
	return dx*dx + dy*dy
}

// ownerOfTerm resolves a term in a text cell: H1 first, then the hash
// fallback over the cell's worker list. Caller holds the lock.
func (c *gridtCell) ownerOfTerm(term string) int {
	if w, ok := c.h1[term]; ok {
		return w
	}
	h := fnv.New32a()
	h.Write([]byte(term))
	return c.fallback[int(h.Sum32())%len(c.fallback)]
}

// RouteObject implements partition.Assignment. Per §IV-C the dispatcher
// looks the object's terms up in the cell's H2 and discards objects
// matching no live registration key.
func (gt *GridT) RouteObject(o *model.Object) []int {
	id := gt.g.CellOf(o.Loc)
	var mask uint64
	mu := gt.lockFor(id)
	mu.RLock()
	c := &gt.cells[id]
	for _, t := range o.Terms {
		if e, ok := c.h2[t]; ok && e.count > 0 {
			mask |= 1 << uint(e.worker)
		}
	}
	mu.RUnlock()
	return maskToWorkers(mask)
}

// RouteQuery implements partition.Assignment. The insertion updates H2 in
// every overlapped cell; deletions decrement it.
func (gt *GridT) RouteQuery(q *model.Query, insert bool) []int {
	keys := gt.stats.RegistrationKeys(q.Expr.Conj)
	var mask uint64
	gt.g.VisitOverlapping(q.Region, func(id int) {
		mu := gt.lockFor(id)
		mu.Lock()
		defer mu.Unlock()
		c := &gt.cells[id]
		for _, k := range keys {
			var w int
			if e, ok := c.h2[k]; ok && e.count > 0 {
				w = e.worker
			} else if c.worker >= 0 {
				w = c.worker
			} else {
				w = c.ownerOfTerm(k)
			}
			mask |= 1 << uint(w)
			if insert {
				if c.h2 == nil {
					c.h2 = make(map[string]h2Entry)
				}
				e := c.h2[k]
				e.worker = w
				e.count++
				c.h2[k] = e
			} else if e, ok := c.h2[k]; ok {
				e.count--
				if e.count <= 0 {
					delete(c.h2, k)
				} else {
					c.h2[k] = e
				}
			}
		}
	})
	return maskToWorkers(mask)
}

// PeekQuery reports where q routes under the current table without
// touching H2's registration counts — RouteQuery with insert=false is
// delete-routing and decrements them, so bookkeeping that only needs to
// *ask* (e.g. "does the migration source still hold this query through
// another cell?") must use this read-only probe instead.
func (gt *GridT) PeekQuery(q *model.Query) []int {
	keys := gt.stats.RegistrationKeys(q.Expr.Conj)
	var mask uint64
	gt.g.VisitOverlapping(q.Region, func(id int) {
		mu := gt.lockFor(id)
		mu.RLock()
		defer mu.RUnlock()
		c := &gt.cells[id]
		for _, k := range keys {
			var w int
			if e, ok := c.h2[k]; ok && e.count > 0 {
				w = e.worker
			} else if c.worker >= 0 {
				w = c.worker
			} else {
				w = c.ownerOfTerm(k)
			}
			mask |= 1 << uint(w)
		}
	})
	return maskToWorkers(mask)
}

func maskToWorkers(mask uint64) []int {
	out := make([]int, 0, bits.OnesCount64(mask))
	for mask != 0 {
		w := bits.TrailingZeros64(mask)
		out = append(out, w)
		mask &^= 1 << uint(w)
	}
	return out
}

// NumWorkers implements partition.Assignment.
func (gt *GridT) NumWorkers() int { return gt.m }

// Name implements partition.Assignment.
func (gt *GridT) Name() string { return "hybrid" }

// Grid exposes the raster geometry (shared with worker GI2 indexes).
func (gt *GridT) Grid() *grid.Grid { return gt.g }

// Stats exposes the term-frequency table used for registration keys.
func (gt *GridT) Stats() *textutil.Stats { return gt.stats }

// Footprint implements partition.Assignment (Figure 9's dispatcher
// memory). H1 maps shared between cells are counted once, using the map's
// runtime identity.
func (gt *GridT) Footprint() int64 {
	var b int64
	seenH1 := make(map[uintptr]bool)
	for i := range gt.cells {
		mu := gt.lockFor(i)
		mu.RLock()
		c := &gt.cells[i]
		b += 24 // cell header
		if c.h1 != nil {
			p := reflect.ValueOf(c.h1).Pointer()
			if !seenH1[p] {
				seenH1[p] = true
				for t := range c.h1 {
					b += int64(len(t)) + 24
				}
			}
		}
		b += int64(len(c.fallback)) * 8
		for t := range c.h2 {
			b += int64(len(t)) + 32
		}
		mu.RUnlock()
	}
	return b
}

// IsTextCell reports whether the cell routes through H1/H2 term maps.
func (gt *GridT) IsTextCell(cellID int) bool {
	mu := gt.lockFor(cellID)
	mu.RLock()
	defer mu.RUnlock()
	return gt.cells[cellID].worker < 0
}

// CellWorkers returns the distinct workers currently serving a cell.
func (gt *GridT) CellWorkers(cellID int) []int {
	mu := gt.lockFor(cellID)
	mu.RLock()
	defer mu.RUnlock()
	c := &gt.cells[cellID]
	if c.worker >= 0 {
		return []int{c.worker}
	}
	var mask uint64
	for _, w := range c.fallback {
		mask |= 1 << uint(w)
	}
	for _, w := range c.h1 {
		mask |= 1 << uint(w)
	}
	for _, e := range c.h2 {
		mask |= 1 << uint(e.worker)
	}
	return maskToWorkers(mask)
}

// ReassignSpaceCell points a space cell at a new worker, returning the
// previous owner. It is the routing half of migrating a space cell; the
// caller moves the corresponding GI2 queries. Calling it on a text cell
// returns -1 without changes.
func (gt *GridT) ReassignSpaceCell(cellID, to int) int {
	mu := gt.lockFor(cellID)
	mu.Lock()
	defer mu.Unlock()
	c := &gt.cells[cellID]
	if c.worker < 0 {
		return -1
	}
	old := c.worker
	c.worker = to
	for k, e := range c.h2 {
		if e.worker == old {
			e.worker = to
			c.h2[k] = e
		}
	}
	return old
}

// ReassignTextShare moves every term owned by from in a text cell to to
// (H1, fallback slots, and live H2 entries). It returns the number of H2
// keys moved. No-op on space cells.
func (gt *GridT) ReassignTextShare(cellID, from, to int) int {
	mu := gt.lockFor(cellID)
	mu.Lock()
	defer mu.Unlock()
	c := &gt.cells[cellID]
	if c.worker >= 0 {
		return 0
	}
	gt.ensureOwnH1(c)
	for t, w := range c.h1 {
		if w == from {
			c.h1[t] = to
		}
	}
	for i, w := range c.fallback {
		if w == from {
			c.fallback[i] = to
		}
	}
	moved := 0
	for k, e := range c.h2 {
		if e.worker == from {
			e.worker = to
			c.h2[k] = e
			moved++
		}
	}
	return moved
}

// SplitSpaceCellByText converts a space cell into a text cell, moving the
// given registration keys to worker to while everything else stays with
// the previous owner (Phase I of local load adjustment: "after using
// text-partitioning to partition g_s into two new cells g_1 and g_2 ...
// migrate the cell having a smaller size"). Returns the previous owner, or
// -1 if the cell was already text-partitioned.
func (gt *GridT) SplitSpaceCellByText(cellID int, keys []string, to int) int {
	mu := gt.lockFor(cellID)
	mu.Lock()
	defer mu.Unlock()
	c := &gt.cells[cellID]
	if c.worker < 0 {
		return -1
	}
	old := c.worker
	c.worker = -1
	c.h1 = make(map[string]int, len(keys))
	c.sharedH1 = false
	for _, k := range keys {
		c.h1[k] = to
	}
	c.fallback = []int{old}
	for k, e := range c.h2 {
		if _, moved := c.h1[k]; moved {
			e.worker = to
			c.h2[k] = e
		}
	}
	return old
}

// MergeTextShares reroutes worker from's share of a text cell to worker
// to, and collapses the cell back to a space cell when a single worker
// remains ("we check whether migrating g_t to w_l and merging g_t and g'_t
// can reduce the total load"). Returns the number of H2 keys moved.
func (gt *GridT) MergeTextShares(cellID, from, to int) int {
	moved := gt.ReassignTextShare(cellID, from, to)
	mu := gt.lockFor(cellID)
	mu.Lock()
	defer mu.Unlock()
	c := &gt.cells[cellID]
	if c.worker >= 0 {
		return moved
	}
	only := -1
	uniform := true
	check := func(w int) {
		if only == -1 {
			only = w
		} else if only != w {
			uniform = false
		}
	}
	for _, w := range c.h1 {
		check(w)
	}
	for _, w := range c.fallback {
		check(w)
	}
	for _, e := range c.h2 {
		check(e.worker)
	}
	if uniform && only >= 0 {
		c.worker = only
		c.h1 = nil
		c.fallback = nil
		c.sharedH1 = false
	}
	return moved
}

// H2Keys returns the live registration keys of a cell routed to the given
// worker. Used by migration to extract the matching GI2 entries.
func (gt *GridT) H2Keys(cellID, worker int) []string {
	mu := gt.lockFor(cellID)
	mu.RLock()
	defer mu.RUnlock()
	c := &gt.cells[cellID]
	var out []string
	for k, e := range c.h2 {
		if e.worker == worker && e.count > 0 {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// ensureOwnH1 clones a shared H1 map before mutation (copy-on-write).
// Caller holds the write lock.
func (gt *GridT) ensureOwnH1(c *gridtCell) {
	if !c.sharedH1 {
		return
	}
	clone := make(map[string]int, len(c.h1))
	for k, v := range c.h1 {
		clone[k] = v
	}
	c.h1 = clone
	c.sharedH1 = false
}
