package bench

import (
	"context"
	"fmt"
	"net"
	"time"

	"ps2stream/internal/core"
	"ps2stream/internal/node"
	"ps2stream/internal/wire"
	"ps2stream/internal/workload"
)

// wireRepeats mirrors batchRepeats: best-of-N converges on capacity.
// Seven repeats (not three) because the tcp/inproc ratio is CI-gated
// with a hard floor; best-of-seven, with the two modes interleaved so
// background noise lands on both alike, keeps scheduler jitter out of
// both numerators.
const wireRepeats = 7

// WireThroughput measures the cost of leaving the process: the same
// seeded workload is driven once with every worker task in-process
// (channel transfer) and once with every worker task behind loopback
// TCP (psnode serve loops speaking the internal/wire protocol — real
// sockets, negotiated binary framing, multi-stream sessions, drain
// barriers; only the machine boundary is missing). The ratio is the wire tax a networked deployment pays per
// hop before real network latency is added; the matches column
// sanity-checks comparable delivery (small run-to-run variation stems
// from insert/object ordering races across dispatcher tasks and exists
// identically in both modes — the exact-set guarantee is asserted by
// the single-dispatcher tests in core and cmd/psnode).
func WireThroughput(sc Scale) []Table {
	sc = sc.orDefault()
	sc.PerTupleWork = 0
	spec := workload.TweetsUS()
	t := Table{
		Title:  "Wire transport: in-process channels vs loopback TCP (all worker tasks remote; PerTupleWork forced to 0)",
		Header: []string{"transport", "throughput(tuples/s)", "speedup", "matches"},
	}
	// Interleaved best-of: each repeat runs both modes back to back, so
	// background load skews them alike instead of landing on whichever
	// mode happened to run during the noisy stretch.
	var tp [2]float64
	var matches [2]int64
	var errs [2]error
	for r := 0; r < wireRepeats; r++ {
		for m := 0; m < 2; m++ {
			if errs[m] != nil {
				continue
			}
			rtp, rm, rerr := measureWire(spec, sc, m == 1)
			if rerr != nil {
				errs[m] = rerr
				continue
			}
			if rtp > tp[m] {
				tp[m], matches[m] = rtp, rm
			}
		}
	}
	for m, mode := range []string{"inproc", "tcp"} {
		if errs[m] != nil {
			t.Rows = append(t.Rows, []string{mode, "ERR: " + errs[m].Error(), "", ""})
			continue
		}
		speedup := "1.00x"
		if m == 1 && tp[0] > 0 {
			speedup = fmt.Sprintf("%.2fx", tp[1]/tp[0])
		}
		t.Rows = append(t.Rows, []string{mode, f0(tp[m]), speedup, fmt.Sprint(matches[m])})
	}
	return []Table{t}
}

// measureWire runs the standard throughput protocol with all worker
// tasks either in-process or behind loopback-TCP worker nodes.
func measureWire(spec workload.DatasetSpec, sc Scale, tcp bool) (tps float64, matches int64, err error) {
	sample := workload.Sample(spec, workload.Q1, sc.SampleObjects, sc.SampleQueries, sc.Seed)
	cfg := core.Config{
		Dispatchers: sc.Dispatchers,
		Workers:     sc.Workers,
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if tcp {
		addrs := make([]string, sc.Workers)
		for i := range addrs {
			ln, lerr := net.Listen("tcp", "127.0.0.1:0")
			if lerr != nil {
				return 0, 0, lerr
			}
			go node.NewWorker(node.WorkerOptions{}).Serve(ctx, ln)
			addrs[i] = ln.Addr().String()
		}
		if err := cfg.ConnectRemoteWorkers(addrs, sample, wire.Backoff{}); err != nil {
			return 0, 0, err
		}
	}
	sys, err := core.New(cfg, sample)
	if err != nil {
		return 0, 0, err
	}
	st := workload.NewStream(spec, workload.Q1, workload.StreamConfig{Mu: sc.Mu1, Seed: sc.Seed})
	if err := sys.Start(context.Background()); err != nil {
		return 0, 0, err
	}
	warm := st.Prewarm(sc.Mu1)
	sys.SubmitAll(warm)
	// Full end-to-end drain (remote workers included) so the standing
	// population is indexed before the measured stream starts.
	if err := sys.Drain(int64(len(warm))); err != nil {
		return 0, 0, err
	}
	ops := st.Take(sc.Ops)
	t0 := time.Now()
	sys.SubmitAll(ops)
	// The timed region ends at the same barrier in both modes: every op
	// processed and every match delivered.
	if err := sys.Drain(int64(len(warm) + len(ops))); err != nil {
		return 0, 0, err
	}
	el := time.Since(t0)
	if err := sys.Close(); err != nil {
		return 0, 0, err
	}
	return float64(len(ops)) / el.Seconds(), sys.MatchCount(), nil
}
