package bench

import (
	"strings"
	"testing"
)

func report(rows ...[]string) Report {
	return Report{Experiments: []ReportExperiment{{
		Experiment: "batch",
		Tables: []Table{{
			Title:  "t",
			Header: []string{"batch", "throughput(tuples/s)", "speedup", "matches"},
			Rows:   rows,
		}},
	}}}
}

func TestCompareReportsPassesWithinTolerance(t *testing.T) {
	base := report([]string{"1", "100000", "1.00x", "50"}, []string{"64", "170000", "1.70x", "51"})
	cur := report([]string{"1", "80000", "1.00x", "49"}, []string{"64", "140000", "1.75x", "52"})
	regs, n, err := CompareReports(base, cur, 0.35)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
	// 2 rows × (throughput + speedup); the matches column is not gated.
	if n != 4 {
		t.Fatalf("compared %d metrics, want 4", n)
	}
}

func TestCompareReportsFlagsRegression(t *testing.T) {
	base := report([]string{"64", "170000", "1.70x", "51"})
	cur := report([]string{"64", "100000", "1.01x", "51"})
	regs, _, err := CompareReports(base, cur, 0.35)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 2 {
		t.Fatalf("want throughput and speedup regressions, got %v", regs)
	}
	if !strings.Contains(regs[0].String(), "batch") {
		t.Errorf("String() lacks experiment id: %q", regs[0])
	}
}

func TestCompareReportsSchemaDriftFailsLoudly(t *testing.T) {
	base := report([]string{"64", "170000", "1.70x", "51"})
	for _, cur := range []Report{
		{Experiments: nil}, // experiment missing
		{Experiments: []ReportExperiment{{Experiment: "batch"}}}, // table missing
		report([]string{"256", "170000", "1.70x", "51"}),         // row missing
		report([]string{"64", "not-a-number", "1.70x", "51"}),    // unparseable candidate
		{Experiments: []ReportExperiment{{Experiment: "batch", Tables: []Table{{Title: "t", Header: []string{"batch", "matches"}, Rows: [][]string{{"64", "51"}}}}}}}, // column gone
	} {
		if _, _, err := CompareReports(base, cur, 0.35); err == nil {
			t.Errorf("candidate %+v: want error, got pass", cur)
		}
	}
}

func TestCompareReportsVacuousGateErrors(t *testing.T) {
	empty := Report{}
	if _, _, err := CompareReports(empty, empty, 0.35); err == nil {
		t.Error("empty baseline compared nothing yet passed")
	}
	ungated := Report{Experiments: []ReportExperiment{{
		Experiment: "x",
		Tables:     []Table{{Header: []string{"a"}, Rows: [][]string{{"r"}}}},
	}}}
	if _, _, err := CompareReports(ungated, ungated, 0.35); err == nil {
		t.Error("report with no gated columns passed vacuously")
	}
	if _, _, err := CompareReports(empty, empty, 1.5); err == nil {
		t.Error("tolerance out of range accepted")
	}
}

func TestParseReportRoundTrip(t *testing.T) {
	r, err := ParseReport([]byte(`{"scale":{"Mu1":5},"experiments":[{"experiment":"adjust","tables":[]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if r.Scale.Mu1 != 5 || len(r.Experiments) != 1 || r.Experiments[0].Experiment != "adjust" {
		t.Fatalf("round trip mangled: %+v", r)
	}
	if _, err := ParseReport([]byte("{")); err == nil {
		t.Error("invalid JSON accepted")
	}
}

func wireReport(tcpSpeedup string) Report {
	return Report{Experiments: []ReportExperiment{{
		Experiment: "wire",
		Tables: []Table{{
			Title:  "t",
			Header: []string{"transport", "throughput(tuples/s)", "speedup", "matches"},
			Rows: [][]string{
				{"inproc", "666820", "1.00x", "770"},
				{"tcp", "606989", tcpSpeedup, "700"},
			},
		}},
	}}}
}

func TestCheckWireRatio(t *testing.T) {
	if err := CheckWireRatio(wireReport("0.91x"), 0.8); err != nil {
		t.Errorf("0.91 vs floor 0.8: %v", err)
	}
	if err := CheckWireRatio(wireReport("0.72x"), 0.8); err == nil {
		t.Error("0.72 vs floor 0.8: want error, got pass")
	}
	if err := CheckWireRatio(wireReport("garbage"), 0.8); err == nil {
		t.Error("unparseable ratio: want error, got pass")
	}
	if err := CheckWireRatio(wireReport("0.91x"), 0); err == nil {
		t.Error("non-positive floor accepted")
	}
	// Vacuous gates must fail loudly, not pass.
	if err := CheckWireRatio(Report{}, 0.8); err == nil {
		t.Error("report without a wire experiment passed")
	}
	noTCP := wireReport("0.91x")
	noTCP.Experiments[0].Tables[0].Rows = noTCP.Experiments[0].Tables[0].Rows[:1]
	if err := CheckWireRatio(noTCP, 0.8); err == nil {
		t.Error("report without a tcp row passed")
	}
}
