package bench

import (
	"context"
	"fmt"
	"time"

	"ps2stream/internal/core"
	"ps2stream/internal/geo"
	"ps2stream/internal/hybrid"
	"ps2stream/internal/qindex"
	"ps2stream/internal/textutil"
	"ps2stream/internal/workload"
)

// workerIndexFactories enumerates the §IV-D index options (nil = GI2).
func workerIndexFactories() []struct {
	name string
	f    core.IndexFactory
} {
	return []struct {
		name string
		f    core.IndexFactory
	}{
		{"gi2", nil},
		{"rtree", func(_ geo.Rect, _ int, _ *textutil.Stats) qindex.Index {
			return qindex.NewRTree(0)
		}},
		{"iqtree", func(bounds geo.Rect, _ int, stats *textutil.Stats) qindex.Index {
			return qindex.NewIQTree(bounds, stats, 0, 0)
		}},
		{"aptree", func(bounds geo.Rect, _ int, stats *textutil.Stats) qindex.Index {
			return qindex.NewAPTree(bounds, stats, 0, 0, 0)
		}},
	}
}

// AblWorkerIndex is the §IV-D design-choice ablation through the full
// topology: each worker-index structure carries the same hybrid-partitioned
// Q1 and Q2 workloads; the table reports end-to-end throughput and the
// average worker footprint. The paper picks GI2 "due to its efficiency in
// construction and maintaining" — this experiment is the measurement
// behind that sentence.
func AblWorkerIndex(sc Scale) []Table {
	sc = sc.orDefault()
	spec := workload.TweetsUS()
	var out []Table
	for _, fam := range []struct {
		kind workload.QueryKind
		mu   int
		sub  string
	}{
		{workload.Q1, sc.Mu1, "Q1, mu~5M(scaled)"},
		{workload.Q2, sc.Mu2(), "Q2, mu~10M(scaled)"},
	} {
		t := Table{
			Title:  "Ablation (worker index): hybrid strategy, TWEETS-US, " + fam.sub,
			Header: []string{"index", "throughput(tuples/s)", "avg worker bytes"},
		}
		for _, wi := range workerIndexFactories() {
			tp, wb, err := measureIndexThroughput(spec, fam.kind, wi.f, sc, fam.mu)
			if err != nil {
				t.Rows = append(t.Rows, []string{wi.name, "ERR: " + err.Error(), ""})
				continue
			}
			t.Rows = append(t.Rows, []string{wi.name, f0(tp), fmt.Sprintf("%d", wb)})
		}
		out = append(out, t)
	}
	return out
}

// AblLatencyVsRate measures each strategy's saturation curve: first its
// capacity (full-speed throughput), then the mean tuple latency while
// pacing the input at fractions of that capacity — the curve behind
// Figure 8's "moderate input speed" setting. Latency stays flat while the
// bottleneck worker keeps up, then grows sharply once the input rate
// crosses capacity and queues build.
func AblLatencyVsRate(sc Scale) []Table {
	sc = sc.orDefault()
	spec := workload.TweetsUS()
	fractions := []float64{0.25, 0.5, 0.75, 0.95, 1.2}
	t := Table{
		Title:  "Ablation (latency vs input rate): TWEETS-US Q3, fractions of each strategy's capacity",
		Header: append([]string{"strategy", "capacity(tuples/s)"}, fractionHeaders(fractions)...),
	}
	for _, b := range headToHead {
		cap, err := drainedCapacity(spec, workload.Q3, b, sc)
		if err != nil {
			t.Rows = append(t.Rows, []string{b, "ERR: " + err.Error()})
			continue
		}
		row := []string{b, f0(cap)}
		for _, fr := range fractions {
			lat, err := pacedLatency(spec, workload.Q3, b, sc, cap*fr, 400*time.Millisecond)
			if err != nil {
				row = append(row, "ERR")
				continue
			}
			row = append(row, ms(lat))
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{t}
}

// drainedCapacity measures end-to-end capacity: ops/second from the first
// submission until every tuple has fully drained through the workers.
// measureThroughput (used for the Figure 6/7 comparisons) times until the
// dispatchers have routed everything, which can leave worker queues full —
// fine for comparing strategies measured identically, but an overestimate
// as the reference point for a saturation sweep.
func drainedCapacity(spec workload.DatasetSpec, kind workload.QueryKind,
	builderName string, sc Scale) (float64, error) {
	sys, st, err := buildSystem(spec, kind, builderName, sc, sc.Workers, sc.Mu2(), core.AdjustConfig{})
	if err != nil {
		return 0, err
	}
	if err := sys.Start(context.Background()); err != nil {
		return 0, err
	}
	warm := st.Prewarm(sc.Mu2())
	sys.SubmitAll(warm)
	waitProcessed(sys, int64(len(warm)))
	t0 := time.Now()
	for i := 0; i < sc.Ops; i++ {
		sys.Submit(st.Next())
	}
	if err := sys.Close(); err != nil {
		return 0, err
	}
	return float64(sc.Ops) / time.Since(t0).Seconds(), nil
}

// pacedLatency drives the stream at the given rate for the given duration
// and reports the mean tuple latency. Pacing is in 1 ms batches — a
// per-tuple ticker cannot express rates beyond ~10k tuples/s, and the
// saturation sweep needs rates around full capacity.
func pacedLatency(spec workload.DatasetSpec, kind workload.QueryKind,
	builderName string, sc Scale, rate float64, dur time.Duration) (time.Duration, error) {
	sys, st, err := buildSystem(spec, kind, builderName, sc, sc.Workers, sc.Mu2(), core.AdjustConfig{})
	if err != nil {
		return 0, err
	}
	if err := sys.Start(context.Background()); err != nil {
		return 0, err
	}
	warm := st.Prewarm(sc.Mu2())
	sys.SubmitAll(warm)
	waitProcessed(sys, int64(len(warm)))
	batch := int(rate / 1000)
	if batch < 1 {
		batch = 1
	}
	ticker := time.NewTicker(time.Millisecond)
	// Pace through a warm-up period first, then discard its latencies:
	// the first tuples after the µ-query prewarm pay cold caches and
	// one-off allocations, which would otherwise dominate the mean at low
	// rates (few measured tuples) and invert the curve.
	warmDeadline := time.Now().Add(dur / 2)
	for time.Now().Before(warmDeadline) {
		<-ticker.C
		for i := 0; i < batch; i++ {
			sys.Submit(st.Next())
		}
	}
	sys.ResetLatencyStats()
	deadline := time.Now().Add(dur)
	for time.Now().Before(deadline) {
		<-ticker.C
		for i := 0; i < batch; i++ {
			sys.Submit(st.Next())
		}
	}
	ticker.Stop()
	if err := sys.Close(); err != nil {
		return 0, err
	}
	return sys.Snapshot().Latency.Mean, nil
}

func fractionHeaders(fs []float64) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = fmt.Sprintf("%.0f%%", f*100)
	}
	return out
}

// measureIndexThroughput is measureThroughput with a worker-index factory:
// prewarm µ queries, drive sc.Ops operations at full speed, report
// tuples/second and the average worker footprint.
func measureIndexThroughput(spec workload.DatasetSpec, kind workload.QueryKind,
	f core.IndexFactory, sc Scale, mu int) (float64, int64, error) {
	sample := workload.Sample(spec, kind, sc.SampleObjects, sc.SampleQueries, sc.Seed)
	sys, err := core.New(core.Config{
		Dispatchers:  sc.Dispatchers,
		Workers:      sc.Workers,
		Builder:      hybrid.Builder{},
		IndexFactory: f,
		PerTupleWork: sc.PerTupleWork,
	}, sample)
	if err != nil {
		return 0, 0, err
	}
	if err := sys.Start(context.Background()); err != nil {
		return 0, 0, err
	}
	st := workload.NewStream(spec, kind, workload.StreamConfig{Mu: mu, Seed: sc.Seed})
	warm := st.Prewarm(mu)
	sys.SubmitAll(warm)
	waitProcessed(sys, int64(len(warm)))
	t0 := time.Now()
	for i := 0; i < sc.Ops; i++ {
		sys.Submit(st.Next())
	}
	waitProcessed(sys, int64(len(warm)+sc.Ops))
	el := time.Since(t0)
	if err := sys.Close(); err != nil {
		return 0, 0, err
	}
	snap := sys.Snapshot()
	var sum int64
	for _, b := range snap.WorkerBytes {
		sum += b
	}
	return float64(sc.Ops) / el.Seconds(), sum / int64(len(snap.WorkerBytes)), nil
}
