package bench

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"ps2stream/internal/core"
	"ps2stream/internal/geo"
	"ps2stream/internal/gi2"
	"ps2stream/internal/metrics"
	"ps2stream/internal/migrate"
	"ps2stream/internal/model"
	"ps2stream/internal/workload"
)

// workerCells builds a realistic migration-candidate inventory: a GI2
// index loaded with mu standing queries and a window of matched objects,
// exactly what a worker hands the cell-selection algorithms.
func workerCells(sc Scale, mu int) []migrate.Cell {
	spec := workload.TweetsUS()
	st := workload.NewStream(spec, workload.Q1, workload.StreamConfig{Mu: mu, Seed: sc.Seed})
	sample := workload.Sample(spec, workload.Q1, sc.SampleObjects, sc.SampleQueries, sc.Seed)
	ix := gi2.New(spec.Bounds, 64, sample.Stats)
	for _, op := range st.Prewarm(mu) {
		ix.Insert(op.Query)
	}
	og := workload.NewGenerator(spec, sc.Seed^77)
	for i := 0; i < mu; i++ {
		ix.Match(og.Object(), func(*model.Query) {})
	}
	var cells []migrate.Cell
	for _, cs := range ix.CellStats() {
		if cs.Entries == 0 || cs.Load <= 0 {
			continue
		}
		cells = append(cells, migrate.Cell{ID: cs.CellID, Load: cs.Load, Size: cs.SizeBytes})
	}
	return cells
}

func tauFor(cells []migrate.Cell) float64 {
	var total float64
	for _, c := range cells {
		total += c.Load
	}
	return total * 0.25
}

// Fig12SelectionTime reproduces Figure 12(a): running time of selecting
// cells for migration, DP vs GR vs SI vs RA (µ ≈ 1M scaled).
func Fig12SelectionTime(sc Scale) []Table {
	sc = sc.orDefault()
	cells := workerCells(sc, sc.Mu1/5)
	tau := tauFor(cells)
	t := Table{
		Title:  fmt.Sprintf("Figure 12(a): cell-selection time (%d cells)", len(cells)),
		Header: []string{"algorithm", "time", "migrated size(B)"},
	}
	rng := rand.New(rand.NewSource(sc.Seed))
	for _, alg := range migrate.Algorithms() {
		const reps = 5
		var total time.Duration
		var sel migrate.Selection
		for r := 0; r < reps; r++ {
			t0 := time.Now()
			sel, _ = migrate.Select(alg, cells, tau, rng)
			total += time.Since(t0)
		}
		t.Rows = append(t.Rows, []string{string(alg), ms(total / reps), fmt.Sprintf("%d", sel.Size)})
	}
	return []Table{t}
}

// Fig13SelectionScaling reproduces Figure 13(a,b): selection time for
// GR/SI/RA at µ ≈ 5M and 10M (scaled). DP is excluded: the paper reports
// workers run out of memory at these sizes (its table is O(n·P)).
func Fig13SelectionScaling(sc Scale) []Table {
	sc = sc.orDefault()
	var out []Table
	for _, cfg := range []struct {
		mu  int
		sub string
	}{
		{sc.Mu1, "(a) mu~5M(scaled)"},
		{sc.Mu2(), "(b) mu~10M(scaled)"},
	} {
		cells := workerCells(sc, cfg.mu)
		tau := tauFor(cells)
		t := Table{
			Title:  fmt.Sprintf("Figure 13%s: selection time (%d cells; DP omitted, OOM in paper)", cfg.sub, len(cells)),
			Header: []string{"algorithm", "time"},
		}
		rng := rand.New(rand.NewSource(sc.Seed))
		for _, alg := range []migrate.Algorithm{migrate.GR, migrate.SI, migrate.RA} {
			const reps = 5
			var total time.Duration
			for r := 0; r < reps; r++ {
				t0 := time.Now()
				migrate.Select(alg, cells, tau, rng)
				total += time.Since(t0)
			}
			t.Rows = append(t.Rows, []string{string(alg), ms(total / reps)})
		}
		out = append(out, t)
	}
	return out
}

// migrationRun drives a skewed, paced stream through an adjustment-enabled
// system and reports migration statistics and the latency distribution.
type migrationResult struct {
	migrations int
	avgBytes   float64
	avgTime    time.Duration
	latency    metrics.Snapshot
}

func migrationRun(alg migrate.Algorithm, sc Scale, mu int) (migrationResult, error) {
	spec := workload.TweetsUS()
	sys, st, err := buildSystem(spec, workload.Q1, "hybrid", sc, sc.Workers, mu, core.AdjustConfig{
		Enabled:   true,
		Sigma:     1.2,
		Interval:  50 * time.Millisecond,
		Algorithm: alg,
		// A slow ingest path (scaled with the workload): the receiving
		// worker is blocked for bytes/rate while it deserialises and
		// indexes the migrated queries, which is what delays tuples in
		// Figures 12(c)/15. Scaled so migrations stall the receiver on
		// the order of the paper's 100ms–1s bucket boundaries.
		WireBytesPerSec: 64 << 10,
		MinWindowOps:    128,
		Seed:            sc.Seed,
	})
	if err != nil {
		return migrationResult{}, err
	}
	if err := sys.Start(context.Background()); err != nil {
		return migrationResult{}, err
	}
	warm := st.Prewarm(mu)
	sys.SubmitAll(warm)
	waitProcessed(sys, int64(len(warm)))
	sys.ResetLatencyStats() // measure steady state + migration effects only

	// Hotspot-rotating object stream: the sample is uniform, so routing
	// concentrates load and violates the balance constraint repeatedly.
	corners := []geo.Point{
		{X: spec.Bounds.Min.X + spec.Bounds.Width()*0.2, Y: spec.Bounds.Min.Y + spec.Bounds.Height()*0.2},
		{X: spec.Bounds.Min.X + spec.Bounds.Width()*0.8, Y: spec.Bounds.Min.Y + spec.Bounds.Height()*0.3},
		{X: spec.Bounds.Min.X + spec.Bounds.Width()*0.3, Y: spec.Bounds.Min.Y + spec.Bounds.Height()*0.8},
	}
	n := sc.Ops / 2
	interval := time.Duration(float64(time.Second) / sc.PacedRate)
	ticker := time.NewTicker(interval)
	rng := rand.New(rand.NewSource(sc.Seed ^ 0xF16))
	for i := 0; i < n; i++ {
		<-ticker.C
		op := st.Next()
		if op.Kind == model.OpObject {
			c := corners[(i*len(corners))/n]
			op.Obj.Loc = geo.Point{
				X: c.X + rng.NormFloat64()*0.3,
				Y: c.Y + rng.NormFloat64()*0.3,
			}
		}
		sys.Submit(op)
	}
	ticker.Stop()
	if err := sys.Close(); err != nil {
		return migrationResult{}, err
	}
	snap := sys.Snapshot()
	res := migrationResult{latency: snap.Latency}
	var bytes int64
	var dur time.Duration
	for _, m := range snap.Migrations {
		res.migrations++
		bytes += m.Bytes
		dur += m.Duration
	}
	if res.migrations > 0 {
		res.avgBytes = float64(bytes) / float64(res.migrations)
		res.avgTime = dur / time.Duration(res.migrations)
	}
	return res, nil
}

// migrationCostTable renders the cost/time comparison for one µ.
func migrationCostTable(title string, algs []migrate.Algorithm, sc Scale, mu int) Table {
	t := Table{
		Title:  title,
		Header: []string{"algorithm", "migrations", "avg cost(KB)", "avg time"},
	}
	for _, alg := range algs {
		r, err := migrationRun(alg, sc, mu)
		if err != nil {
			t.Rows = append(t.Rows, []string{string(alg), "ERR: " + err.Error(), "", ""})
			continue
		}
		t.Rows = append(t.Rows, []string{
			string(alg),
			fmt.Sprintf("%d", r.migrations),
			fmt.Sprintf("%.1f", r.avgBytes/1024),
			ms(r.avgTime),
		})
	}
	return t
}

// latencyBucketTable renders the paper's <100ms / [100ms,1s] / >1s split.
func latencyBucketTable(title string, algs []migrate.Algorithm, sc Scale, mu int) Table {
	t := Table{
		Title:  title,
		Header: []string{"algorithm", "<100ms", "[100ms,1s]", ">1s"},
	}
	for _, alg := range algs {
		r, err := migrationRun(alg, sc, mu)
		if err != nil {
			t.Rows = append(t.Rows, []string{string(alg), "ERR: " + err.Error(), "", ""})
			continue
		}
		b100 := r.latency.Below100
		b1s := r.latency.Below1s
		t.Rows = append(t.Rows, []string{
			string(alg),
			fmt.Sprintf("%.1f%%", b100*100),
			fmt.Sprintf("%.1f%%", (b1s-b100)*100),
			fmt.Sprintf("%.1f%%", (1-b1s)*100),
		})
	}
	return t
}

// Fig12MigrationCost reproduces Figure 12(b) (µ ≈ 1M scaled, all four
// algorithms).
func Fig12MigrationCost(sc Scale) []Table {
	sc = sc.orDefault()
	return []Table{migrationCostTable(
		"Figure 12(b): migration cost and time, mu~1M(scaled)",
		migrate.Algorithms(), sc, sc.Mu1/5)}
}

// Fig12LatencyBuckets reproduces Figure 12(c).
func Fig12LatencyBuckets(sc Scale) []Table {
	sc = sc.orDefault()
	return []Table{latencyBucketTable(
		"Figure 12(c): tuple latency during migrations, mu~1M(scaled)",
		migrate.Algorithms(), sc, sc.Mu1/5)}
}

// Fig14MigrationScaling reproduces Figure 14(a,b): GR/SI/RA migration
// cost and time at µ ≈ 5M and 10M (scaled).
func Fig14MigrationScaling(sc Scale) []Table {
	sc = sc.orDefault()
	algs := []migrate.Algorithm{migrate.GR, migrate.SI, migrate.RA}
	return []Table{
		migrationCostTable("Figure 14(a): migration cost/time, mu~5M(scaled)", algs, sc, sc.Mu1),
		migrationCostTable("Figure 14(b): migration cost/time, mu~10M(scaled)", algs, sc, sc.Mu2()),
	}
}

// Fig15LatencyScaling reproduces Figure 15(a,b).
func Fig15LatencyScaling(sc Scale) []Table {
	sc = sc.orDefault()
	algs := []migrate.Algorithm{migrate.GR, migrate.SI, migrate.RA}
	return []Table{
		latencyBucketTable("Figure 15(a): latency buckets, mu~5M(scaled)", algs, sc, sc.Mu1),
		latencyBucketTable("Figure 15(b): latency buckets, mu~10M(scaled)", algs, sc, sc.Mu2()),
	}
}

// Fig16AdjustEffect reproduces Figure 16: system throughput with and
// without dynamic load adjustment under the drifting Q3 workload (every
// interval, 10% of the regions switch between Q1 and Q2 behaviour).
func Fig16AdjustEffect(sc Scale) []Table {
	sc = sc.orDefault()
	t := Table{
		Title:  "Figure 16: effect of dynamic load adjustments (STS-US-Q3 drift)",
		Header: []string{"mode", "throughput(tuples/s)"},
	}
	for _, mode := range []struct {
		name   string
		adjust bool
	}{
		{"NoAdjust", false},
		{"Adjust", true},
	} {
		tp, err := fig16Run(sc, mode.adjust)
		if err != nil {
			t.Rows = append(t.Rows, []string{mode.name, "ERR: " + err.Error()})
			continue
		}
		t.Rows = append(t.Rows, []string{mode.name, f0(tp)})
	}
	return []Table{t}
}

func fig16Run(sc Scale, adjust bool) (float64, error) {
	spec := workload.TweetsUS()
	mu := sc.Mu1
	var acfg core.AdjustConfig
	if adjust {
		acfg = core.AdjustConfig{
			Enabled:      true,
			Sigma:        1.25,
			Interval:     50 * time.Millisecond,
			Algorithm:    migrate.GR,
			MinWindowOps: 128,
			Seed:         sc.Seed,
		}
	}
	sys, st, err := buildSystem(spec, workload.Q3, "hybrid", sc, sc.Workers, mu, acfg)
	if err != nil {
		return 0, err
	}
	if err := sys.Start(context.Background()); err != nil {
		return 0, err
	}
	warm := st.Prewarm(mu)
	sys.SubmitAll(warm)
	waitProcessed(sys, int64(len(warm)))

	// Drift: flip 10% of the regions every mu/5 inserted queries, and
	// concentrate objects in the currently-Q1 half of the space so the
	// load actually shifts.
	flipEvery := mu / 5
	if flipEvery < 1 {
		flipEvery = 1
	}
	inserts := 0
	t0 := time.Now()
	for i := 0; i < sc.Ops; i++ {
		op := st.Next()
		if op.Kind == model.OpInsert {
			inserts++
			if inserts%flipEvery == 0 {
				st.QueryGen().FlipRegions(0.1)
			}
		}
		sys.Submit(op)
	}
	waitProcessed(sys, int64(len(warm)+sc.Ops))
	el := time.Since(t0)
	if err := sys.Close(); err != nil {
		return 0, err
	}
	return float64(sc.Ops) / el.Seconds(), nil
}
