package bench

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"ps2stream/internal/workload"
)

// microScale keeps ablation smoke tests fast.
func microScale() Scale {
	return Scale{
		SampleObjects: 1500,
		SampleQueries: 300,
		Mu1:           400,
		Ops:           3000,
		PacedRate:     5000,
		Workers:       2,
		Dispatchers:   1,
		PerTupleWork:  time.Microsecond,
		Seed:          7,
	}
}

func TestAblWorkerIndexQuick(t *testing.T) {
	tables := AblWorkerIndex(microScale())
	if len(tables) != 2 {
		t.Fatalf("got %d tables, want 2 (Q1, Q2)", len(tables))
	}
	for _, tab := range tables {
		if len(tab.Rows) != 4 {
			t.Fatalf("%s: %d rows, want 4 indexes", tab.Title, len(tab.Rows))
		}
		for _, row := range tab.Rows {
			if strings.HasPrefix(row[1], "ERR") {
				t.Errorf("%s: %s failed: %s", tab.Title, row[0], row[1])
				continue
			}
			tp, err := strconv.ParseFloat(row[1], 64)
			if err != nil || tp <= 0 {
				t.Errorf("%s: %s throughput %q", tab.Title, row[0], row[1])
			}
			wb, err := strconv.ParseInt(row[2], 10, 64)
			if err != nil || wb <= 0 {
				t.Errorf("%s: %s worker bytes %q", tab.Title, row[0], row[2])
			}
		}
	}
}

func TestDrainedCapacityAndPacedLatency(t *testing.T) {
	sc := microScale()
	spec := workload.TweetsUS()
	cap, err := drainedCapacity(spec, workload.Q3, "hybrid", sc)
	if err != nil {
		t.Fatal(err)
	}
	if cap <= 0 {
		t.Fatalf("capacity = %v", cap)
	}
	lat, err := pacedLatency(spec, workload.Q3, "hybrid", sc, cap/4, 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if lat <= 0 || lat > 5*time.Second {
		t.Errorf("paced latency = %v", lat)
	}
}
