package bench

import (
	"fmt"

	"ps2stream/internal/workload"
)

// datasets returns the two evaluation corpora.
func datasets() []workload.DatasetSpec {
	return []workload.DatasetSpec{workload.TweetsUS(), workload.TweetsUK()}
}

// throughputTable sweeps builders × datasets at one query family.
func throughputTable(title string, builders []string, kind workload.QueryKind, sc Scale, mu int) []Table {
	t := Table{
		Title:  title,
		Header: []string{"dataset", "strategy", "throughput(tuples/s)"},
	}
	for _, spec := range datasets() {
		for _, b := range builders {
			tp, err := measureThroughput(spec, kind, b, sc, sc.Workers, mu)
			if err != nil {
				t.Rows = append(t.Rows, []string{spec.Name, b, "ERR: " + err.Error()})
				continue
			}
			t.Rows = append(t.Rows, []string{spec.Name, b, f0(tp)})
		}
	}
	return []Table{t}
}

// Fig6TextQ1 reproduces Figure 6(a): text-partitioning baselines on Q1.
func Fig6TextQ1(sc Scale) []Table {
	sc = sc.orDefault()
	return throughputTable("Figure 6(a): text baselines, Q1, mu~5M(scaled)",
		[]string{"frequency", "hypergraph", "metric"}, workload.Q1, sc, sc.Mu1)
}

// Fig6TextQ2 reproduces Figure 6(b): text baselines on Q2.
func Fig6TextQ2(sc Scale) []Table {
	sc = sc.orDefault()
	return throughputTable("Figure 6(b): text baselines, Q2, mu~10M(scaled)",
		[]string{"frequency", "hypergraph", "metric"}, workload.Q2, sc, sc.Mu2())
}

// Fig6SpaceQ1 reproduces Figure 6(c): space baselines on Q1.
func Fig6SpaceQ1(sc Scale) []Table {
	sc = sc.orDefault()
	return throughputTable("Figure 6(c): space baselines, Q1, mu~5M(scaled)",
		[]string{"grid", "kdtree", "rtree"}, workload.Q1, sc, sc.Mu1)
}

// Fig6SpaceQ2 reproduces Figure 6(d): space baselines on Q2.
func Fig6SpaceQ2(sc Scale) []Table {
	sc = sc.orDefault()
	return throughputTable("Figure 6(d): space baselines, Q2, mu~10M(scaled)",
		[]string{"grid", "kdtree", "rtree"}, workload.Q2, sc, sc.Mu2())
}

// headToHead are the finalists compared against hybrid in §VI-C.
var headToHead = []string{"metric", "kdtree", "hybrid"}

// Fig7Throughput reproduces Figure 7(a–c): Metric vs kd-tree vs Hybrid
// throughput on Q1, Q2 and Q3.
func Fig7Throughput(sc Scale) []Table {
	sc = sc.orDefault()
	var out []Table
	for _, fam := range []struct {
		kind workload.QueryKind
		mu   int
		sub  string
	}{
		{workload.Q1, sc.Mu1, "(a) Q1, mu~5M(scaled)"},
		{workload.Q2, sc.Mu2(), "(b) Q2, mu~10M(scaled)"},
		{workload.Q3, sc.Mu2(), "(c) Q3, mu~10M(scaled)"},
	} {
		out = append(out, throughputTable("Figure 7"+fam.sub, headToHead, fam.kind, sc, fam.mu)...)
	}
	return out
}

// Fig8Latency reproduces Figure 8(a–c): mean tuple latency at a moderate
// input rate.
func Fig8Latency(sc Scale) []Table {
	sc = sc.orDefault()
	var out []Table
	for _, fam := range []struct {
		kind workload.QueryKind
		mu   int
		sub  string
	}{
		{workload.Q1, sc.Mu1, "(a) Q1"},
		{workload.Q2, sc.Mu2(), "(b) Q2"},
		{workload.Q3, sc.Mu2(), "(c) Q3"},
	} {
		t := Table{
			Title:  "Figure 8" + fam.sub + ": latency at moderate input rate",
			Header: []string{"dataset", "strategy", "mean latency"},
		}
		for _, spec := range datasets() {
			for _, b := range headToHead {
				lat, err := measureLatency(spec, fam.kind, b, sc, sc.Workers, fam.mu)
				if err != nil {
					t.Rows = append(t.Rows, []string{spec.Name, b, "ERR: " + err.Error()})
					continue
				}
				t.Rows = append(t.Rows, []string{spec.Name, b, ms(lat)})
			}
		}
		out = append(out, t)
	}
	return out
}

// memoryTables runs the Figure 9/10 sweeps.
func memoryTables(sc Scale, dispatcher bool) []Table {
	var out []Table
	for _, fam := range []struct {
		kind workload.QueryKind
		mu   int
		sub  string
	}{
		{workload.Q1, sc.Mu1, "(a) Q1"},
		{workload.Q2, sc.Mu2(), "(b) Q2"},
		{workload.Q3, sc.Mu2(), "(c) Q3"},
	} {
		var title, col string
		if dispatcher {
			title = "Figure 9" + fam.sub + ": dispatcher memory"
			col = "dispatcher bytes"
		} else {
			title = "Figure 10" + fam.sub + ": worker memory"
			col = "avg worker bytes"
		}
		t := Table{Title: title, Header: []string{"dataset", "strategy", col}}
		for _, spec := range datasets() {
			for _, b := range headToHead {
				db, wb, err := measureMemory(spec, fam.kind, b, sc, sc.Workers, fam.mu)
				if err != nil {
					t.Rows = append(t.Rows, []string{spec.Name, b, "ERR: " + err.Error()})
					continue
				}
				v := db
				if !dispatcher {
					v = wb
				}
				t.Rows = append(t.Rows, []string{spec.Name, b, fmt.Sprintf("%d", v)})
			}
		}
		out = append(out, t)
	}
	return out
}

// Fig9DispatcherMemory reproduces Figure 9(a–c).
func Fig9DispatcherMemory(sc Scale) []Table {
	return memoryTables(sc.orDefault(), true)
}

// Fig10WorkerMemory reproduces Figure 10(a–c).
func Fig10WorkerMemory(sc Scale) []Table {
	return memoryTables(sc.orDefault(), false)
}

// Fig11Scalability reproduces Figure 11(a–c): throughput as workers grow.
// A single box cannot add physical cores per worker, so this experiment
// uses the load-model estimator (see modelThroughput) — the strategies'
// relative scaling and crossovers are preserved.
func Fig11Scalability(sc Scale) []Table {
	sc = sc.orDefault()
	spec := workload.TweetsUK()
	workerCounts := []int{8, 12, 16, 20, 24}
	var out []Table
	for _, fam := range []struct {
		kind workload.QueryKind
		mu   int
		sub  string
	}{
		{workload.Q1, sc.Mu2(), "(a) STS-UK-Q1, mu~10M(scaled)"},
		{workload.Q2, 4 * sc.Mu1, "(b) STS-UK-Q2, mu~20M(scaled)"},
		{workload.Q3, 4 * sc.Mu1, "(c) STS-UK-Q3, mu~20M(scaled)"},
	} {
		t := Table{
			Title:  "Figure 11" + fam.sub + ": scalability (model estimate)",
			Header: append([]string{"strategy"}, workerHeaders(workerCounts)...),
		}
		for _, b := range headToHead {
			row := []string{b}
			for _, w := range workerCounts {
				tp, err := modelThroughput(spec, fam.kind, b, sc, w, fam.mu)
				if err != nil {
					row = append(row, "ERR")
					continue
				}
				row = append(row, f0(tp))
			}
			t.Rows = append(t.Rows, row)
		}
		out = append(out, t)
	}
	return out
}

func workerHeaders(ws []int) []string {
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = fmt.Sprintf("w=%d", w)
	}
	return out
}
