package bench

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// Report is the machine-readable form of a psbench run — the schema of
// the committed BENCH_*.json baselines (docs/WIRE.md). cmd/psbench writes
// it with -json and CompareReports gates new runs against it in CI.
type Report struct {
	Scale       Scale              `json:"scale"`
	Experiments []ReportExperiment `json:"experiments"`
}

// ReportExperiment is one experiment's tables in a Report.
type ReportExperiment struct {
	Experiment string  `json:"experiment"`
	ElapsedMS  int64   `json:"elapsed_ms"`
	Tables     []Table `json:"tables"`
}

// ParseReport decodes a psbench -json report.
func ParseReport(data []byte) (Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return Report{}, fmt.Errorf("bench: parsing report: %w", err)
	}
	return r, nil
}

// Regression is one tolerance-gate violation found by CompareReports.
type Regression struct {
	Experiment string
	Table      string
	Row        string
	Column     string
	Baseline   float64
	Current    float64
}

// String renders the violation for CI logs.
func (r Regression) String() string {
	return fmt.Sprintf("%s: %q row %q column %q: %.0f -> %.0f (%.1f%% of baseline)",
		r.Experiment, r.Table, r.Row, r.Column, r.Baseline, r.Current,
		100*r.Current/r.Baseline)
}

// gatedColumn reports whether a column holds a perf metric the gate
// guards: absolute throughput ("tuples/s" headers, machine-dependent) and
// relative factors ("speedup", "vs static" — machine-independent, the
// robust signal on heterogeneous CI runners).
func gatedColumn(header string) bool {
	h := strings.ToLower(header)
	return strings.Contains(h, "tuples/s") || strings.Contains(h, "speedup") ||
		strings.Contains(h, "vs static")
}

// parseMetric parses a gated cell: a plain float ("847687") or a ratio
// with an x suffix ("1.67x").
func parseMetric(cell string) (float64, bool) {
	cell = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(cell), "x"))
	v, err := strconv.ParseFloat(cell, 64)
	return v, err == nil
}

// CheckWireRatio enforces the wire experiment's absolute floor: the
// "speedup" cell of the report's "tcp" row (the loopback-TCP to
// in-process throughput ratio) must reach at least floor. Unlike the
// relative tolerance gate, this is machine-independent — both modes run
// on the same box in the same invocation, so their ratio is a property
// of the transport, not the runner. A report without a wire experiment,
// tcp row, or speedup column is an error: the gate must not pass
// vacuously.
func CheckWireRatio(r Report, floor float64) error {
	if floor <= 0 {
		return fmt.Errorf("bench: wire ratio floor %v must be positive", floor)
	}
	for _, e := range r.Experiments {
		if e.Experiment != "wire" {
			continue
		}
		for _, t := range e.Tables {
			speedupCol := -1
			for ci, h := range t.Header {
				if strings.Contains(strings.ToLower(h), "speedup") {
					speedupCol = ci
					break
				}
			}
			if speedupCol < 0 {
				continue
			}
			for _, row := range t.Rows {
				if len(row) <= speedupCol || row[0] != "tcp" {
					continue
				}
				v, ok := parseMetric(row[speedupCol])
				if !ok {
					return fmt.Errorf("bench: wire: tcp row speedup %q is not a ratio", row[speedupCol])
				}
				if v < floor {
					return fmt.Errorf("bench: wire: tcp/inproc ratio %.2f below the %.2f floor", v, floor)
				}
				return nil
			}
		}
		return fmt.Errorf("bench: wire experiment has no tcp row with a speedup column")
	}
	return fmt.Errorf("bench: report has no wire experiment to check the ratio floor against")
}

// CompareReports gates current against baseline: every gated metric of
// every experiment present in the baseline must reach at least
// (1 - tol) × its baseline value. It returns the regressions and the
// number of metric values compared; a baseline experiment, table, row, or
// gated value missing from current is an error (schema drift must fail
// loudly, not pass silently), as is a comparison that checks nothing.
func CompareReports(baseline, current Report, tol float64) ([]Regression, int, error) {
	if tol < 0 || tol >= 1 {
		return nil, 0, fmt.Errorf("bench: tolerance %v outside [0, 1)", tol)
	}
	curExp := make(map[string]ReportExperiment, len(current.Experiments))
	for _, e := range current.Experiments {
		curExp[e.Experiment] = e
	}
	var regs []Regression
	compared := 0
	for _, be := range baseline.Experiments {
		ce, ok := curExp[be.Experiment]
		if !ok {
			return nil, compared, fmt.Errorf("bench: experiment %q missing from the candidate report", be.Experiment)
		}
		if len(ce.Tables) != len(be.Tables) {
			return nil, compared, fmt.Errorf("bench: %s: candidate has %d tables, baseline %d",
				be.Experiment, len(ce.Tables), len(be.Tables))
		}
		for ti, bt := range be.Tables {
			ct := ce.Tables[ti]
			curRows := make(map[string][]string, len(ct.Rows))
			for _, r := range ct.Rows {
				if len(r) > 0 {
					curRows[r[0]] = r
				}
			}
			for _, br := range bt.Rows {
				if len(br) == 0 {
					continue
				}
				cr, ok := curRows[br[0]]
				if !ok {
					return nil, compared, fmt.Errorf("bench: %s: row %q missing from the candidate report",
						be.Experiment, br[0])
				}
				for ci, header := range bt.Header {
					if !gatedColumn(header) || ci >= len(br) {
						continue
					}
					bv, ok := parseMetric(br[ci])
					if !ok {
						continue // baseline cell not numeric (e.g. its own ERR) — nothing to gate
					}
					if ci >= len(cr) {
						return nil, compared, fmt.Errorf("bench: %s: row %q lost column %q",
							be.Experiment, br[0], header)
					}
					cv, ok := parseMetric(cr[ci])
					if !ok {
						return nil, compared, fmt.Errorf("bench: %s: row %q column %q: unparseable candidate value %q",
							be.Experiment, br[0], header, cr[ci])
					}
					compared++
					if cv < bv*(1-tol) {
						regs = append(regs, Regression{
							Experiment: be.Experiment,
							Table:      bt.Title,
							Row:        br[0],
							Column:     header,
							Baseline:   bv,
							Current:    cv,
						})
					}
				}
			}
		}
	}
	if compared == 0 {
		return nil, 0, fmt.Errorf("bench: no gated metrics found to compare — the gate would pass vacuously")
	}
	return regs, compared, nil
}
