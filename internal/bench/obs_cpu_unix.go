//go:build unix

package bench

import "syscall"

// processCPUSeconds reads the CPU charged to this process so far (user +
// system, all threads). The obs experiment meters phases in CPU seconds
// because rusage is stable under the scheduler noise of shared CI
// runners, where wall-clock throughput is not.
func processCPUSeconds() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return wallSeconds()
	}
	return float64(ru.Utime.Sec) + float64(ru.Utime.Usec)/1e6 +
		float64(ru.Stime.Sec) + float64(ru.Stime.Usec)/1e6
}
