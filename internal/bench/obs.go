package bench

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"time"

	"ps2stream/internal/core"
	"ps2stream/internal/metrics"
	"ps2stream/internal/obs"
	"ps2stream/internal/workload"
)

// obsPhasePairs is the number of interleaved (admin off, admin on)
// measurement phase pairs per experiment; obsRepeats repeats the whole
// interleaved experiment and the best per-experiment ratio is reported,
// the same best-of idiom the batch experiment uses. Each experiment is
// internally differential, and external interference can only depress a
// ratio, never raise it past parity — so best-of filters interference
// while a real overhead regression, which depresses every repeat,
// still shows.
const (
	obsPhasePairs = 4
	obsRepeats    = 5
)

// ObsOverhead measures what the observability layer costs the publish
// hot path. One warmed system publishes the stream in interleaved
// phases: admin server idle ("off") alternating with a scraper hitting
// /metrics and /statsz continuously ("on"). Interleaving makes the
// comparison differential — machine-speed drift, GC pauses and scheduler
// phases load onto both configs alike, so the ratio isolates the
// scrape-under-load cost. The registry instrumentation itself
// (func-backed series plus one histogram observation per batch) is
// always on, in both phases and in every other benchmark: its cost is
// bounded by the batch experiment's gated speedup baseline.
//
// The gated signal is the relative column: a same-machine ratio near
// 1.0 on any hardware. CI holds it within 3% (the observability
// overhead budget), much tighter than the 35% wall-clock gates.
//
// The second table is the per-stage latency breakdown recorded by the
// run, so committed baselines document where pipeline time goes.
func ObsOverhead(sc Scale) []Table {
	sc = sc.orDefault()

	type run struct {
		off, on, ratio float64
		stages         map[string]metrics.Snapshot
	}
	runs := make([]run, 0, obsRepeats)
	for i := 0; i < obsRepeats; i++ {
		offR, onR, st, err := measureObsInterleaved(sc)
		if err != nil {
			return errTables(err)
		}
		runs = append(runs, run{off: offR, on: onR, ratio: onR / offR, stages: st})
	}
	sort.Slice(runs, func(i, j int) bool { return runs[i].ratio < runs[j].ratio })
	best := runs[len(runs)-1]
	off, on, stages := best.off, best.on, best.stages

	// Overhead cannot be negative: a ratio above 1.0 means measurement
	// noise favoured the "on" phases. Clamp so a committed baseline never
	// encodes that noise as a target future runs must beat.
	ratio := best.ratio
	if ratio > 1 {
		ratio = 1
	}

	overhead := Table{
		Title:  fmt.Sprintf("Observability overhead (hybrid, µ=%d, %d ops, interleaved phases)", sc.Mu1, sc.Ops),
		Header: []string{"config", "ops/cpu-sec", "relative (speedup vs off)"},
		Rows: [][]string{
			{"admin off", f0(off), "1.00x"},
			{"admin on + scraper", f0(on), fmt.Sprintf("%.2fx", ratio)},
		},
	}

	breakdown := Table{
		Title:  "Per-stage latency breakdown (per transfer batch)",
		Header: []string{"stage", "batches", "mean", "p50", "p99"},
	}
	for _, stage := range []string{core.StageDispatch, core.StageWorker, core.StageMerge} {
		s := stages[stage]
		breakdown.Rows = append(breakdown.Rows, []string{
			stage, fmt.Sprintf("%d", s.Count), us(s.Mean), us(s.P50), us(s.P99),
		})
	}
	return []Table{overhead, breakdown}
}

// measureObsInterleaved runs one interleaved experiment: a single system
// with the admin server bound, publishing 2×obsPhasePairs+1 phases of
// sc.Ops ops each — a discarded warm-up phase, then alternating
// off/on phases. It returns the per-config throughputs over the summed
// phase times and the system's per-stage histograms.
func measureObsInterleaved(sc Scale) (offRate, onRate float64, stages map[string]metrics.Snapshot, err error) {
	spec := workload.TweetsUS()
	sys, st, err := buildSystem(spec, workload.Q1, "hybrid", sc, sc.Workers, sc.Mu1, core.AdjustConfig{})
	if err != nil {
		return 0, 0, nil, err
	}
	if err := sys.Start(context.Background()); err != nil {
		return 0, 0, nil, err
	}
	srv, err := obs.Serve("127.0.0.1:0", obs.Options{Registry: sys.Registry(), Role: "dispatcher"})
	if err != nil {
		return 0, 0, nil, err
	}

	// The scraper loop runs only while scraping is non-nil-signalled:
	// "on" phases open the gate, "off" phases close it and wait for the
	// in-flight scrape to finish so phases do not bleed into each other.
	scrapeOn := make(chan struct{}, 1)
	scrapeOff := make(chan struct{})
	done := make(chan struct{})
	idle := make(chan struct{}, 1)
	go func() {
		client := &http.Client{Timeout: 2 * time.Second}
		active := false
		for {
			if !active {
				select {
				case <-done:
					return
				case <-scrapeOn:
					active = true
				}
				continue
			}
			select {
			case <-done:
				return
			case <-scrapeOff:
				active = false
				idle <- struct{}{}
				continue
			default:
			}
			for _, path := range []string{"/metrics", "/statsz"} {
				if resp, gerr := client.Get("http://" + srv.Addr() + path); gerr == nil {
					resp.Body.Close()
				}
			}
			// ~25 scrapes/s: two orders of magnitude hotter than production
			// Prometheus, without degenerating into a spin loop whose core
			// theft dominates the scrape cost being measured.
			time.Sleep(40 * time.Millisecond)
		}
	}()

	warm := st.Prewarm(sc.Mu1)
	sys.SubmitAll(warm)
	waitProcessed(sys, int64(len(warm)))

	// Phase cost is process CPU seconds, not wall time: on a contended
	// machine (CI runners) wall-clock throughput wobbles with whatever
	// else the host runs, while CPU charged per op is stable — and any
	// observability overhead (scrape handling, extra instrumentation) is
	// CPU this process burns, so it cannot hide in the noise.
	total := int64(len(warm))
	runPhase := func(n int) float64 {
		c0 := processCPUSeconds()
		for i := 0; i < n; i++ {
			sys.Submit(st.Next())
		}
		total += int64(n)
		waitProcessed(sys, total)
		return processCPUSeconds() - c0
	}

	runPhase(sc.Ops) // warm-up phase, untimed

	var offCPU, onCPU float64
	var offOps, onOps int64
	offPhase := func() {
		offCPU += runPhase(sc.Ops)
		offOps += int64(sc.Ops)
	}
	onPhase := func() {
		scrapeOn <- struct{}{}
		onCPU += runPhase(sc.Ops)
		onOps += int64(sc.Ops)
		scrapeOff <- struct{}{}
		<-idle
	}
	// Alternate which config leads each pair so residual warm-up or
	// population drift does not consistently load onto one config.
	for p := 0; p < obsPhasePairs; p++ {
		if p%2 == 0 {
			offPhase()
			onPhase()
		} else {
			onPhase()
			offPhase()
		}
	}
	close(done)

	stages = sys.StageSnapshots()
	if err := srv.Close(); err != nil {
		return 0, 0, nil, err
	}
	if err := sys.Close(); err != nil {
		return 0, 0, nil, err
	}
	return float64(offOps) / offCPU, float64(onOps) / onCPU, stages, nil
}

// wallBase anchors the wall-clock fallback of processCPUSeconds on
// platforms without rusage.
var wallBase = time.Now()

func wallSeconds() float64 { return time.Since(wallBase).Seconds() }

func us(d time.Duration) string {
	return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1000)
}

// errTables keeps the two-table shape on error so CompareReports still
// sees a structurally valid report.
func errTables(err error) []Table {
	return []Table{
		{Title: "Observability overhead", Header: []string{"config", "ops/cpu-sec", "relative (speedup vs off)"},
			Rows: [][]string{{"ERR: " + err.Error(), "", ""}}},
		{Title: "Per-stage latency breakdown", Header: []string{"stage", "batches", "mean", "p50", "p99"}},
	}
}
