package bench

import (
	"context"
	"fmt"
	"net"
	"time"

	"ps2stream/internal/core"
	"ps2stream/internal/node"
	"ps2stream/internal/wire"
	"ps2stream/internal/workload"
)

// The hotspot-shift workload of the adjust experiment: object traffic
// concentrates on cluster adjustHotA with adjustBias, then shifts to
// adjustHotB mid-run. The partitioner is fitted to the pre-shift skew
// (objects and queries focused on A), so after the shift a static
// assignment funnels most of the now-hot traffic into the few workers
// that happen to own B's cells. The metro-scale sigma matters: the hot
// load must span many grid cells, because cells are the migration unit —
// load concentrated in a single cell cannot be spread at all.
const (
	adjustHotA  = 0
	adjustHotB  = 1
	adjustBias  = 0.85
	adjustSigma = 2.0 // degrees
)

// adjustRepeats is how many independent runs each mode gets; the best is
// reported (capacity is a maximum — noise only subtracts).
const adjustRepeats = 2

// adjustModelCost converts the bottleneck worker's measured receive count
// into modeled capacity (tuples/s): on the paper's cluster every received
// tuple costs the worker network receive + deserialisation + matching
// (tens of microseconds), so system throughput is the inverse of the
// bottleneck's share of the traffic. The harness measures that share on
// the live system — real routing, real migrations, real drain barriers —
// and applies the nominal per-tuple cost, the same single-box
// substitution the Figure 11 scalability experiment uses: goroutine
// workers on one machine cannot expose placement wins as wall-clock
// throughput because they share the same cores.
const adjustModelCost = 50 * time.Microsecond

// AdjustRecovery measures what the adaptive adjustment controller buys
// under a hotspot shift: modeled steady-state capacity before the shift,
// and after it, with static partitioning vs the auto controller (EWMA
// load sampling + θ/hysteresis/cooldown detector + cell migrations). The
// "vs static" column is the post-shift recovery factor — the committed
// BENCH_adjust.json baseline pins it at ≥1.2×.
func AdjustRecovery(sc Scale) []Table {
	sc = sc.orDefault()
	spec := workload.TweetsUS()
	placement := ""
	if sc.Wire {
		placement = "; all worker tasks behind loopback TCP, migrations cross the wire"
	}
	t := Table{
		Title: fmt.Sprintf("Adaptive adjustment: capacity recovery after a hotspot shift "+
			"(focus %d->%d, bias %.2f, modeled at %v/tuple from the measured bottleneck share%s)",
			adjustHotA, adjustHotB, adjustBias, adjustModelCost, placement),
		Header: []string{"mode", "pre-shift(tuples/s)", "post-shift(tuples/s)", "vs static", "migrations"},
	}
	var staticPost float64
	for _, mode := range []struct {
		name string
		auto bool
	}{
		{"static", false},
		{"auto-adjust", true},
	} {
		var r adjustResult
		var err error
		ok := false
		for rep := 0; rep < adjustRepeats; rep++ {
			rr, rerr := adjustRun(spec, sc, mode.auto)
			if rerr != nil {
				err = rerr
				continue // best-of: a later failed repeat must not discard an earlier measurement
			}
			if !ok || rr.post > r.post {
				r = rr
			}
			ok = true
		}
		if !ok {
			t.Rows = append(t.Rows, []string{mode.name, "ERR: " + err.Error(), "", "", ""})
			continue
		}
		if !mode.auto {
			staticPost = r.post
		}
		rel := "1.00x"
		if mode.auto && staticPost > 0 {
			rel = fmt.Sprintf("%.2fx", r.post/staticPost)
		}
		t.Rows = append(t.Rows, []string{
			mode.name, f0(r.pre), f0(r.post), rel, fmt.Sprint(r.migrations),
		})
	}
	return []Table{t}
}

type adjustResult struct {
	pre, post  float64
	migrations int
}

// modelCapacity converts one phase's per-worker receive deltas into
// modeled tuples/s: N tuples arrived, the bottleneck worker received
// maxShare of them, and each received tuple costs adjustModelCost.
func modelCapacity(before, after []int64, submitted int) float64 {
	var maxShare int64
	var total int64
	for i := range after {
		d := after[i] - before[i]
		total += d
		if d > maxShare {
			maxShare = d
		}
	}
	if maxShare == 0 || total == 0 {
		return 0
	}
	// Duplicated deliveries (an object routed to several workers) raise
	// total above submitted; capacity is what the bottleneck can sustain.
	return float64(submitted) / (float64(maxShare) * adjustModelCost.Seconds())
}

// adjustRun drives the hotspot-shift protocol through one live system:
// prewarm µ standing queries, measure the bottleneck share on hotspot A,
// shift the focus to hotspot B, give the controller a paced adaptation
// window (several detector intervals of wall-clock live traffic), then
// measure the steady-state bottleneck share on B. With sc.Wire every
// worker task runs behind a loopback-TCP node serve loop, so the
// controller's load samples arrive over the stats round and its
// migrations cross the wire.
func adjustRun(spec workload.DatasetSpec, sc Scale, auto bool) (adjustResult, error) {
	// The partitioner sees yesterday's skew: objects and queries focused
	// on A (today's live queries stay unbiased — that drift is the point).
	sample := workload.SampleFocused(spec, workload.Q1,
		sc.SampleObjects, sc.SampleQueries, sc.Seed, adjustHotA, adjustSigma, adjustBias)
	var acfg core.AdjustConfig
	if auto {
		// Sigma is looser than the paper's 1.25 default: the fitted
		// pre-shift state hovers well above 1 (the load model is only a
		// model), and migrating inside that band costs ingest stalls with
		// little balance to gain. The post-shift violation is an order of
		// magnitude, so a 2.0 trigger still fires immediately.
		acfg = core.AdjustConfig{
			Enabled:       true,
			Sigma:         2.0,
			Interval:      30 * time.Millisecond,
			Cooldown:      120 * time.Millisecond,
			SustainChecks: 2,
			MinWindowOps:  64,
			Seed:          sc.Seed,
		}
	}
	cfg := core.Config{
		Dispatchers:  sc.Dispatchers,
		Workers:      sc.Workers,
		Adjust:       acfg,
		PerTupleWork: sc.PerTupleWork,
	}
	if sc.Wire {
		nodeCtx, cancel := context.WithCancel(context.Background())
		defer cancel()
		addrs := make([]string, sc.Workers)
		for i := range addrs {
			ln, lerr := net.Listen("tcp", "127.0.0.1:0")
			if lerr != nil {
				return adjustResult{}, lerr
			}
			go node.NewWorker(node.WorkerOptions{}).Serve(nodeCtx, ln)
			addrs[i] = ln.Addr().String()
		}
		if err := cfg.ConnectRemoteWorkers(addrs, sample, wire.Backoff{}); err != nil {
			return adjustResult{}, err
		}
	}
	sys, err := core.New(cfg, sample)
	if err != nil {
		return adjustResult{}, err
	}
	st := workload.NewStream(spec, workload.Q1, workload.StreamConfig{
		Mu: sc.Mu1, Seed: sc.Seed,
		FocusBias: adjustBias, FocusHotspot: adjustHotA, FocusSigmaDeg: adjustSigma,
	})
	if err := sys.Start(context.Background()); err != nil {
		return adjustResult{}, err
	}
	warm := st.Prewarm(sc.Mu1)
	sys.SubmitAll(warm)
	sys.Quiesce(int64(len(warm)))
	submitted := int64(len(warm))

	// Phase A: capacity with the skew the partitioner was fitted to.
	// Quiesce drains the workers fully so the receive counters bracket
	// exactly this phase's traffic.
	c0 := sys.WorkerOpCounts()
	opsA := st.Take(sc.Ops)
	sys.SubmitAll(opsA)
	submitted += int64(len(opsA))
	sys.Quiesce(submitted)
	res := adjustResult{pre: modelCapacity(c0, sys.WorkerOpCounts(), len(opsA))}

	// The shift: traffic moves to hotspot B while the standing-query
	// population stays. A paced adaptation window follows so wall-clock
	// time passes at a live-traffic rate — the controller needs several
	// Interval windows to detect the imbalance (hysteresis) and spread
	// the hot cells (one migration round per cooldown). Pacing sends 5ms
	// bursts: a per-op ticker cannot fire faster than the runtime's timer
	// resolution, which would silently throttle the rate below the
	// controller's MinWindowOps and starve the detector.
	st.FocusHotspot(adjustHotB)
	adaptOps := int(1.2 * sc.PacedRate)
	const burstEvery = 5 * time.Millisecond
	perBurst := int(sc.PacedRate * burstEvery.Seconds())
	if perBurst < 1 {
		perBurst = 1
	}
	ticker := time.NewTicker(burstEvery)
	for sent := 0; sent < adaptOps; {
		<-ticker.C
		for j := 0; j < perBurst && sent < adaptOps; j++ {
			sys.Submit(st.Next())
			sent++
			submitted++
		}
	}
	ticker.Stop()
	sys.Quiesce(submitted)

	// Phase B: steady-state capacity after the shift.
	c2 := sys.WorkerOpCounts()
	opsB := st.Take(2 * sc.Ops)
	sys.SubmitAll(opsB)
	submitted += int64(len(opsB))
	sys.Quiesce(submitted)
	res.post = modelCapacity(c2, sys.WorkerOpCounts(), len(opsB))
	if err := sys.Close(); err != nil {
		return adjustResult{}, err
	}
	res.migrations = len(sys.Snapshot().Migrations)
	return res, nil
}
