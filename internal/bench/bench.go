// Package bench is the experiment harness reproducing every figure of the
// paper's evaluation (§VI, Figures 6–16). Each experiment id maps to a
// Runner producing printable tables with the same rows/series the paper
// reports; cmd/psbench and the root bench_test.go drive them.
//
// Scale note: the paper runs 32 EC2 nodes, 280M tweets and 5M–20M standing
// queries; this harness runs goroutine workers on one machine with the
// workload linearly scaled down (see EXPERIMENTS.md). Comparisons between
// strategies — who wins, by what factor, where crossovers fall — are the
// reproduction target, not absolute numbers.
package bench

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"ps2stream/internal/core"
	"ps2stream/internal/hybrid"
	"ps2stream/internal/load"
	"ps2stream/internal/model"
	"ps2stream/internal/partition"
	"ps2stream/internal/workload"
)

// Scale groups the knobs every experiment shares. The zero value is
// replaced by DefaultScale.
type Scale struct {
	// SampleObjects/SampleQueries size the partitioning sample.
	SampleObjects int
	SampleQueries int
	// Mu1 is the scaled-down stand-in for the paper's µ=5M; Mu2 for
	// µ=10M (double Mu1).
	Mu1 int
	// Ops is the number of stream operations per throughput run.
	Ops int
	// PacedRate is the "moderate input speed" (tuples/sec) for latency
	// experiments.
	PacedRate float64
	// Workers/Dispatchers mirror the paper's 8 workers / 4 dispatchers.
	Workers     int
	Dispatchers int
	// PerTupleWork is the simulated per-received-tuple cluster cost
	// (network receive + deserialisation) charged at workers; see the
	// DESIGN.md substitution table.
	PerTupleWork time.Duration
	// Seed drives all generators.
	Seed int64
	// Wire places every worker task behind a loopback-TCP psnode serve
	// loop (real sockets, wire protocol) for the experiments that
	// support it — `adjust`, whose migrations then cross the wire via
	// the cell-migration control frames, and `topk`, whose membership
	// updates then arrive through the WindowDeltaBatch delta stream
	// (psbench -wire).
	Wire bool
}

// DefaultScale is sized for minutes-per-experiment on a laptop.
func DefaultScale() Scale {
	return Scale{
		SampleObjects: 20000,
		SampleQueries: 4000,
		Mu1:           10000,
		Ops:           60000,
		PacedRate:     15000,
		Workers:       8,
		Dispatchers:   4,
		PerTupleWork:  3 * time.Microsecond,
		Seed:          2017,
	}
}

// QuickScale is sized for CI smoke tests of the harness itself.
func QuickScale() Scale {
	return Scale{
		SampleObjects: 3000,
		SampleQueries: 600,
		Mu1:           1500,
		Ops:           8000,
		PacedRate:     8000,
		Workers:       4,
		Dispatchers:   2,
		PerTupleWork:  2 * time.Microsecond,
		Seed:          2017,
	}
}

func (s Scale) orDefault() Scale {
	if s == (Scale{}) {
		return DefaultScale()
	}
	return s
}

// Mu2 is the stand-in for the paper's doubled query count.
func (s Scale) Mu2() int { return 2 * s.Mu1 }

// Table is a printable experiment result; the json tags shape psbench's
// machine-readable baseline files (e.g. BENCH_topk.json).
type Table struct {
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	line := make([]string, len(t.Header))
	for i, h := range t.Header {
		line[i] = pad(h, widths[i])
	}
	fmt.Fprintln(w, strings.Join(line, "  "))
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) {
				line[i] = pad(c, widths[i])
			}
		}
		fmt.Fprintln(w, strings.Join(line[:len(r)], "  "))
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Runner executes one experiment.
type Runner func(Scale) []Table

// Experiments maps experiment ids (DESIGN.md §4) to runners.
func Experiments() map[string]Runner {
	return map[string]Runner{
		"fig6a":   Fig6TextQ1,
		"fig6b":   Fig6TextQ2,
		"fig6c":   Fig6SpaceQ1,
		"fig6d":   Fig6SpaceQ2,
		"fig7":    Fig7Throughput,
		"fig8":    Fig8Latency,
		"fig9":    Fig9DispatcherMemory,
		"fig10":   Fig10WorkerMemory,
		"fig11":   Fig11Scalability,
		"fig12a":  Fig12SelectionTime,
		"fig12b":  Fig12MigrationCost,
		"fig12c":  Fig12LatencyBuckets,
		"fig13":   Fig13SelectionScaling,
		"fig14":   Fig14MigrationScaling,
		"fig15":   Fig15LatencyScaling,
		"fig16":   Fig16AdjustEffect,
		"ablidx":  AblWorkerIndex,
		"ablrate": AblLatencyVsRate,
		"topk":    TopKThroughput,
		"batch":   BatchThroughput,
		"adjust":  AdjustRecovery,
		"wire":    WireThroughput,
		"obs":     ObsOverhead,
	}
}

// ExperimentIDs returns the ids in presentation order.
func ExperimentIDs() []string {
	ids := make([]string, 0, 16)
	for id := range Experiments() {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		// fig6a < fig6b < ... < fig9 < fig10 ...
		a, b := ids[i], ids[j]
		if len(a) != len(b) {
			// "fig6a" (5) vs "fig10" (5) — compare numerically instead.
		}
		na, sa := splitID(a)
		nb, sb := splitID(b)
		if na != nb {
			return na < nb
		}
		return sa < sb
	})
	return ids
}

func splitID(id string) (int, string) {
	if !strings.HasPrefix(id, "fig") {
		return 1 << 30, id // ablations list after the paper figures
	}
	n := 0
	i := 3
	for i < len(id) && id[i] >= '0' && id[i] <= '9' {
		n = n*10 + int(id[i]-'0')
		i++
	}
	return n, id[i:]
}

// builderByName resolves the seven strategies.
func builderByName(name string) partition.Builder {
	if name == "hybrid" {
		return hybrid.Builder{}
	}
	return partition.Builders()[name]
}

// buildSystem assembles a system over the dataset/family with the given
// strategy and worker count, prewarmed to mu standing queries.
func buildSystem(spec workload.DatasetSpec, kind workload.QueryKind, builderName string,
	sc Scale, workers, mu int, adjust core.AdjustConfig) (*core.System, *workload.Stream, error) {
	sample := workload.Sample(spec, kind, sc.SampleObjects, sc.SampleQueries, sc.Seed)
	sys, err := core.New(core.Config{
		Dispatchers:  sc.Dispatchers,
		Workers:      workers,
		Builder:      builderByName(builderName),
		Adjust:       adjust,
		PerTupleWork: sc.PerTupleWork,
	}, sample)
	if err != nil {
		return nil, nil, err
	}
	st := workload.NewStream(spec, kind, workload.StreamConfig{Mu: mu, Seed: sc.Seed})
	return sys, st, nil
}

// waitProcessed polls until the system has routed n tuples.
func waitProcessed(sys *core.System, n int64) {
	for sys.Processed() < n {
		time.Sleep(2 * time.Millisecond)
	}
}

// measureThroughput runs the capacity experiment: prewarm µ queries, then
// drive sc.Ops operations at full speed and report tuples/second.
func measureThroughput(spec workload.DatasetSpec, kind workload.QueryKind,
	builderName string, sc Scale, workers, mu int) (float64, error) {
	sys, st, err := buildSystem(spec, kind, builderName, sc, workers, mu, core.AdjustConfig{})
	if err != nil {
		return 0, err
	}
	if err := sys.Start(context.Background()); err != nil {
		return 0, err
	}
	warm := st.Prewarm(mu)
	sys.SubmitAll(warm)
	waitProcessed(sys, int64(len(warm)))
	t0 := time.Now()
	for i := 0; i < sc.Ops; i++ {
		sys.Submit(st.Next())
	}
	waitProcessed(sys, int64(len(warm)+sc.Ops))
	el := time.Since(t0)
	if err := sys.Close(); err != nil {
		return 0, err
	}
	return float64(sc.Ops) / el.Seconds(), nil
}

// measureLatency drives the stream at the moderate PacedRate and reports
// the mean tuple latency.
func measureLatency(spec workload.DatasetSpec, kind workload.QueryKind,
	builderName string, sc Scale, workers, mu int) (time.Duration, error) {
	sys, st, err := buildSystem(spec, kind, builderName, sc, workers, mu, core.AdjustConfig{})
	if err != nil {
		return 0, err
	}
	if err := sys.Start(context.Background()); err != nil {
		return 0, err
	}
	warm := st.Prewarm(mu)
	sys.SubmitAll(warm)
	waitProcessed(sys, int64(len(warm)))
	// Drop the prewarm burst's latencies: the figure measures steady
	// state at a moderate input rate.
	sys.ResetLatencyStats()
	interval := time.Duration(float64(time.Second) / sc.PacedRate)
	ticker := time.NewTicker(interval)
	n := sc.Ops / 4
	for i := 0; i < n; i++ {
		<-ticker.C
		sys.Submit(st.Next())
	}
	ticker.Stop()
	if err := sys.Close(); err != nil {
		return 0, err
	}
	return sys.Snapshot().Latency.Mean, nil
}

// measureMemory prewarns µ queries plus a slice of objects and reports
// dispatcher and worker footprints.
func measureMemory(spec workload.DatasetSpec, kind workload.QueryKind,
	builderName string, sc Scale, workers, mu int) (dispatcherB int64, workerAvgB int64, err error) {
	sys, st, err := buildSystem(spec, kind, builderName, sc, workers, mu, core.AdjustConfig{})
	if err != nil {
		return 0, 0, err
	}
	if err := sys.Start(context.Background()); err != nil {
		return 0, 0, err
	}
	sys.SubmitAll(st.Prewarm(mu))
	sys.SubmitAll(st.Take(sc.Ops / 4))
	if err := sys.Close(); err != nil {
		return 0, 0, err
	}
	snap := sys.Snapshot()
	var sum int64
	for _, b := range snap.WorkerBytes {
		sum += b
	}
	return snap.DispatcherBytes, sum / int64(len(snap.WorkerBytes)), nil
}

// modelThroughput estimates capacity from the workload model instead of
// wall time: all ops are routed through the assignment, per-worker
// Definition 1 loads accumulate, and throughput scales with the inverse of
// the bottleneck worker's load. Used for the scalability sweep (Figure
// 11), where a single box cannot provide more physical cores per added
// worker; the load model preserves the strategies' relative scaling.
func modelThroughput(spec workload.DatasetSpec, kind workload.QueryKind,
	builderName string, sc Scale, workers, mu int) (float64, error) {
	sample := workload.Sample(spec, kind, sc.SampleObjects, sc.SampleQueries, sc.Seed)
	a, err := builderByName(builderName).Build(sample, workers)
	if err != nil {
		return 0, err
	}
	st := workload.NewStream(spec, kind, workload.StreamConfig{Mu: mu, Seed: sc.Seed})
	costs := load.DefaultCosts
	// Standing population: route µ inserts first.
	objs := make([]float64, workers)
	ins := make([]float64, workers)
	dels := make([]float64, workers)
	queriesHeld := make([]float64, workers)
	for _, op := range st.Prewarm(mu) {
		for _, w := range a.RouteQuery(op.Query, true) {
			queriesHeld[w]++
		}
	}
	nOps := sc.Ops
	for i := 0; i < nOps; i++ {
		op := st.Next()
		switch op.Kind {
		case model.OpObject:
			for _, w := range a.RouteObject(op.Obj) {
				objs[w]++
			}
		case model.OpInsert:
			for _, w := range a.RouteQuery(op.Query, true) {
				ins[w]++
				queriesHeld[w]++
			}
		case model.OpDelete:
			for _, w := range a.RouteQuery(op.Query, false) {
				dels[w]++
				queriesHeld[w]--
			}
		}
	}
	var maxLoad float64
	for w := 0; w < workers; w++ {
		// Matching work scales with the worker's standing queries, the
		// dominant c1 term of Definition 1.
		l := costs.C1*objs[w]*queriesHeld[w] + costs.C2*objs[w] +
			costs.C3*ins[w] + costs.C4*dels[w]
		if l > maxLoad {
			maxLoad = l
		}
	}
	if maxLoad <= 0 {
		return 0, fmt.Errorf("bench: degenerate model load for %s", builderName)
	}
	// tuples/sec ∝ ops per unit of bottleneck load.
	return float64(nOps) / maxLoad * 1e4, nil
}

func f0(v float64) string { return fmt.Sprintf("%.0f", v) }

func ms(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
}
