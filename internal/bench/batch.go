package bench

import (
	"context"
	"fmt"
	"time"

	"ps2stream/internal/core"
	"ps2stream/internal/workload"
)

// batchSizes is the sweep of the batch experiment: 1 is the unbatched
// baseline (tuple-at-a-time channel transfer, the pre-batching engine),
// 64 is DefaultBatchSize.
var batchSizes = []int{1, 8, core.DefaultBatchSize, 256}

// batchRepeats is how many independent runs each batch size gets; the
// best run is reported. Throughput capacity is a maximum — scheduler and
// neighbour noise can only subtract from it — so best-of-N converges on
// the true capacity where a single pass is hostage to one bad slice.
const batchRepeats = 3

// BatchThroughput measures publish throughput of the batched dataflow
// pipeline against the unbatched baseline on the same seeded workload.
// PerTupleWork is deliberately zero here: the experiment isolates the
// engine's own per-message transfer cost (channel sends, worker lock
// acquisitions, scheduling), which is exactly what batching amortises —
// simulated network costs would only dilute both sides equally.
func BatchThroughput(sc Scale) []Table {
	sc = sc.orDefault()
	sc.PerTupleWork = 0
	spec := workload.TweetsUS()
	t := Table{
		Title:  "Batched publish pipeline: throughput vs batch size (1 = unbatched baseline; PerTupleWork forced to 0)",
		Header: []string{"batch", "throughput(tuples/s)", "speedup", "matches"},
	}
	var base float64
	for _, bs := range batchSizes {
		var tp float64
		var matches int64
		var err error
		for r := 0; r < batchRepeats; r++ {
			rtp, rm, rerr := measureBatch(spec, sc, bs)
			if rerr != nil {
				err = rerr
				break
			}
			if rtp > tp {
				tp, matches = rtp, rm
			}
		}
		if err != nil {
			t.Rows = append(t.Rows, []string{fmt.Sprint(bs), "ERR: " + err.Error(), "", ""})
			continue
		}
		if bs == 1 {
			base = tp
		}
		speedup := "1.00x"
		if base > 0 && bs != 1 {
			speedup = fmt.Sprintf("%.2fx", tp/base)
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(bs), f0(tp), speedup, fmt.Sprint(matches)})
	}
	return []Table{t}
}

// measureBatch runs the standard throughput protocol (prewarm µ standing
// queries, then drive sc.Ops operations at full speed) with the given
// transfer batch size.
func measureBatch(spec workload.DatasetSpec, sc Scale, batchSize int) (tps float64, matches int64, err error) {
	sample := workload.Sample(spec, workload.Q1, sc.SampleObjects, sc.SampleQueries, sc.Seed)
	sys, err := core.New(core.Config{
		Dispatchers: sc.Dispatchers,
		Workers:     sc.Workers,
		BatchSize:   batchSize,
	}, sample)
	if err != nil {
		return 0, 0, err
	}
	st := workload.NewStream(spec, workload.Q1, workload.StreamConfig{Mu: sc.Mu1, Seed: sc.Seed})
	if err := sys.Start(context.Background()); err != nil {
		return 0, 0, err
	}
	warm := st.Prewarm(sc.Mu1)
	sys.SubmitAll(warm)
	// Full worker drain, not just dispatcher routing: the standing-query
	// population must be indexed before the measured stream starts or the
	// match column varies with how deep the worker queues run per batch
	// size.
	sys.Quiesce(int64(len(warm)))
	// Pre-generate the measured stream so generator cost (tokenisation,
	// RNG) stays outside the timed region — the experiment times the
	// pipeline, not the workload generator.
	ops := st.Take(sc.Ops)
	t0 := time.Now()
	sys.SubmitAll(ops)
	waitProcessed(sys, int64(len(warm)+len(ops)))
	el := time.Since(t0)
	if err := sys.Close(); err != nil {
		return 0, 0, err
	}
	// Matches are read after Close so the count covers every in-flight
	// tuple and is comparable across batch sizes.
	return float64(len(ops)) / el.Seconds(), sys.MatchCount(), nil
}
