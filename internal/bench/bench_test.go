package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"ps2stream/internal/migrate"
	"ps2stream/internal/workload"
)

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	want := []string{
		"fig6a", "fig6b", "fig6c", "fig6d", "fig7", "fig8", "fig9", "fig10",
		"fig11", "fig12a", "fig12b", "fig12c", "fig13", "fig14", "fig15", "fig16",
		"ablidx", "ablrate", "adjust", "batch", "obs", "topk", "wire",
	}
	if len(exps) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(exps), len(want))
	}
	for _, id := range want {
		if exps[id] == nil {
			t.Errorf("missing experiment %q", id)
		}
	}
	ids := ExperimentIDs()
	if len(ids) != len(want) {
		t.Fatalf("ExperimentIDs returned %d ids", len(ids))
	}
	// The sixteen paper figures come first, in figure order; ablations
	// and extension experiments follow alphabetically.
	for i, id := range []string{
		"fig6a", "fig6b", "fig6c", "fig6d", "fig7", "fig8", "fig9", "fig10",
		"fig11", "fig12a", "fig12b", "fig12c", "fig13", "fig14", "fig15", "fig16",
		"ablidx", "ablrate", "adjust", "batch", "obs", "topk", "wire",
	} {
		if ids[i] != id {
			t.Errorf("ids[%d] = %q, want %q", i, ids[i], id)
		}
	}
}

func TestTableFprint(t *testing.T) {
	tb := Table{
		Title:  "demo",
		Header: []string{"a", "longer"},
		Rows:   [][]string{{"x", "1"}, {"yyyyy", "2"}},
	}
	var buf bytes.Buffer
	tb.Fprint(&buf)
	out := buf.String()
	if !strings.Contains(out, "== demo ==") {
		t.Errorf("missing title: %q", out)
	}
	if !strings.Contains(out, "yyyyy") {
		t.Errorf("missing row: %q", out)
	}
}

func TestScaleDefaults(t *testing.T) {
	var s Scale
	d := s.orDefault()
	if d.Workers != 8 || d.Mu1 <= 0 {
		t.Errorf("orDefault = %+v", d)
	}
	if d.Mu2() != 2*d.Mu1 {
		t.Errorf("Mu2 = %d", d.Mu2())
	}
	q := QuickScale()
	if q.Ops >= DefaultScale().Ops {
		t.Error("QuickScale not smaller than DefaultScale")
	}
}

// parseTPS extracts the numeric throughput column, failing on ERR rows.
func parseTPS(t *testing.T, tab Table) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	for _, r := range tab.Rows {
		key := strings.Join(r[:len(r)-1], "/")
		v := r[len(r)-1]
		if strings.HasPrefix(v, "ERR") {
			t.Fatalf("row %v errored: %s", r, v)
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			t.Fatalf("unparseable value %q in %v", v, r)
		}
		out[key] = f
	}
	return out
}

func TestWorkerCellsNonEmpty(t *testing.T) {
	cells := workerCells(QuickScale(), 500)
	if len(cells) == 0 {
		t.Fatal("no migration candidates generated")
	}
	for _, c := range cells {
		if c.Load <= 0 || c.Size <= 0 {
			t.Fatalf("malformed cell %+v", c)
		}
	}
}

func TestFig12SelectionTimeQuick(t *testing.T) {
	tabs := Fig12SelectionTime(QuickScale())
	if len(tabs) != 1 {
		t.Fatalf("got %d tables", len(tabs))
	}
	if len(tabs[0].Rows) != 4 {
		t.Fatalf("got %d rows, want 4 algorithms", len(tabs[0].Rows))
	}
	for _, r := range tabs[0].Rows {
		if strings.HasPrefix(r[1], "ERR") {
			t.Errorf("%s errored: %v", r[0], r)
		}
	}
}

func TestFig11ModelQuick(t *testing.T) {
	sc := QuickScale()
	tabs := Fig11Scalability(sc)
	if len(tabs) != 3 {
		t.Fatalf("got %d tables", len(tabs))
	}
	// Hybrid should not degrade as workers increase (model estimate is
	// monotone for well-behaved strategies).
	for _, tab := range tabs {
		for _, r := range tab.Rows {
			if r[0] != "hybrid" {
				continue
			}
			first, err1 := strconv.ParseFloat(r[1], 64)
			last, err2 := strconv.ParseFloat(r[len(r)-1], 64)
			if err1 != nil || err2 != nil {
				t.Fatalf("unparseable scalability row %v", r)
			}
			if last < first*0.9 {
				t.Errorf("%s: hybrid model throughput shrank %v -> %v", tab.Title, first, last)
			}
		}
	}
}

func TestModelThroughputOrdering(t *testing.T) {
	// On Q1 (frequent keywords), space partitioning must beat text
	// partitioning in the load model — the Figure 6 headline.
	sc := QuickScale()
	spec := workload.TweetsUS()
	kd, err := modelThroughput(spec, workload.Q1, "kdtree", sc, 8, sc.Mu1)
	if err != nil {
		t.Fatal(err)
	}
	freq, err := modelThroughput(spec, workload.Q1, "frequency", sc, 8, sc.Mu1)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("model Q1: kdtree=%.0f frequency=%.0f", kd, freq)
	if kd <= freq {
		t.Errorf("kd-tree (%.0f) should beat frequency (%.0f) on Q1", kd, freq)
	}
}

func TestThroughputMeasurementQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sc := QuickScale()
	tp, err := measureThroughput(workload.TweetsUS(), workload.Q1, "hybrid", sc, sc.Workers, sc.Mu1)
	if err != nil {
		t.Fatal(err)
	}
	if tp <= 0 {
		t.Errorf("throughput = %v", tp)
	}
	t.Logf("quick hybrid throughput: %.0f tuples/s", tp)
}

func TestMigrationRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sc := QuickScale()
	r, err := migrationRun(migrate.GR, sc, sc.Mu1/2)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("migrations=%d avgKB=%.1f avgTime=%v", r.migrations, r.avgBytes/1024, r.avgTime)
	if r.latency.Count == 0 {
		t.Error("no latency observations")
	}
}
