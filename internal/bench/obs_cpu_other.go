//go:build !unix

package bench

// processCPUSeconds falls back to wall time where rusage is unavailable;
// the obs experiment's ratio then degrades to a wall-clock comparison.
func processCPUSeconds() float64 { return wallSeconds() }
