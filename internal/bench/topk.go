package bench

import (
	"context"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"ps2stream/internal/core"
	"ps2stream/internal/node"
	"ps2stream/internal/wire"
	"ps2stream/internal/workload"
)

// topKFraction is the share of subscriptions that are sliding-window
// top-k in the mixed workload (the rest stay boolean, as a production mix
// would).
const topKFraction = 0.5

// TopKThroughput measures end-to-end throughput and delivered membership
// updates with a sliding-window top-k subscription mix at k ∈ {1, 10, 50},
// against the pure boolean workload as baseline. Bigger k means deeper
// heaps, more refill work on expiry, and a larger global candidate union
// to reconcile — the sweep shows what ranked delivery costs on top of the
// paper's boolean matching.
func TopKThroughput(sc Scale) []Table {
	sc = sc.orDefault()
	spec := workload.TweetsUS()
	placement := ""
	if sc.Wire {
		placement = "; all worker tasks behind loopback TCP, top-k deltas cross the wire"
	}
	t := Table{
		Title:  "Top-k sliding window: throughput vs k (mix 50% top-k, window 30s" + placement + ")",
		Header: []string{"k", "throughput(tuples/s)", "topk_updates", "matches"},
	}
	for _, k := range []int{0, 1, 10, 50} {
		tp, ups, matches, err := measureTopK(spec, sc, k)
		if err != nil {
			t.Rows = append(t.Rows, []string{fmt.Sprint(k), "ERR: " + err.Error(), "", ""})
			continue
		}
		label := fmt.Sprint(k)
		if k == 0 {
			label = "0 (boolean)"
		}
		t.Rows = append(t.Rows, []string{label, f0(tp), fmt.Sprint(ups), fmt.Sprint(matches)})
	}
	return []Table{t}
}

// measureTopK runs the standard throughput protocol with a top-k query
// mix; k == 0 is the boolean baseline. With sc.Wire every worker task
// sits behind a loopback-TCP node, so the membership updates counted
// here arrive through the epoch-tagged WindowDeltaBatch stream and the
// timed region closes at a fenced AdvanceWindow drain barrier instead
// of the in-process counter poll.
func measureTopK(spec workload.DatasetSpec, sc Scale, k int) (tps float64, updates, matches int64, err error) {
	sample := workload.Sample(spec, workload.Q1, sc.SampleObjects, sc.SampleQueries, sc.Seed)
	var ups atomic.Int64
	cfg := core.Config{
		Dispatchers:  sc.Dispatchers,
		Workers:      sc.Workers,
		PerTupleWork: sc.PerTupleWork,
		OnTopK:       func(core.TopKUpdate) { ups.Add(1) },
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if sc.Wire {
		addrs := make([]string, sc.Workers)
		for i := range addrs {
			ln, lerr := net.Listen("tcp", "127.0.0.1:0")
			if lerr != nil {
				return 0, 0, 0, lerr
			}
			go node.NewWorker(node.WorkerOptions{}).Serve(ctx, ln)
			addrs[i] = ln.Addr().String()
		}
		if cerr := cfg.ConnectRemoteWorkers(addrs, sample, wire.Backoff{}); cerr != nil {
			return 0, 0, 0, cerr
		}
	}
	sys, err := core.New(cfg, sample)
	if err != nil {
		return 0, 0, 0, err
	}
	scfg := workload.StreamConfig{Mu: sc.Mu1, Seed: sc.Seed}
	if k > 0 {
		scfg.TopKFraction = topKFraction
		scfg.TopKK = k
		scfg.TopKWindow = 30 * time.Second
	}
	st := workload.NewStream(spec, workload.Q1, scfg)
	if err := sys.Start(context.Background()); err != nil {
		return 0, 0, 0, err
	}
	warm := st.Prewarm(sc.Mu1)
	sys.SubmitAll(warm)
	if sc.Wire {
		if err := sys.Drain(int64(len(warm))); err != nil {
			return 0, 0, 0, err
		}
	} else {
		waitProcessed(sys, int64(len(warm)))
	}
	t0 := time.Now()
	for i := 0; i < sc.Ops; i++ {
		sys.Submit(st.Next())
	}
	if sc.Wire {
		if err := sys.Drain(int64(len(warm) + sc.Ops)); err != nil {
			return 0, 0, 0, err
		}
	} else {
		waitProcessed(sys, int64(len(warm)+sc.Ops))
	}
	el := time.Since(t0)
	matches = sys.MatchCount()
	if err := sys.Close(); err != nil {
		return 0, 0, 0, err
	}
	return float64(sc.Ops) / el.Seconds(), ups.Load(), matches, nil
}
