package node

import (
	"context"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"ps2stream/internal/geo"
	"ps2stream/internal/model"
	"ps2stream/internal/window"
	"ps2stream/internal/wire"
)

func testHello(task int) wire.Hello {
	return wire.Hello{
		Role:        wire.RoleCoordinator,
		Task:        task,
		Workers:     2,
		Bounds:      geo.NewRect(-125, 24, -66, 49),
		Granularity: 16,
		BatchSize:   8,
		Terms:       map[string]int{"coffee": 5, "pizza": 2, "rare": 1},
	}
}

func startWorker(t *testing.T, opts WorkerOptions) (*Worker, string, context.CancelFunc) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	w := NewWorker(opts)
	go w.Serve(ctx, ln)
	t.Cleanup(cancel)
	return w, ln.Addr().String(), cancel
}

func query(id uint64, expr string, r geo.Rect) *model.Query {
	e, err := model.ParseExpr(expr)
	if err != nil {
		panic(err)
	}
	return &model.Query{ID: id, Expr: e, Region: r, Subscriber: id * 10}
}

func TestWorkerSessionMatchesAndDrain(t *testing.T) {
	w, addr, _ := startWorker(t, WorkerOptions{})
	cl, err := wire.DialWorker(addr, testHello(1), wire.Backoff{Attempts: 3})
	if err != nil {
		t.Fatal(err)
	}
	area := geo.NewRect(-80, 30, -70, 40)
	t0 := time.Unix(1700000000, 0)
	err = cl.SendOps(wire.OpBatch{Ops: []wire.OpEnv{
		{Op: model.Op{Kind: model.OpInsert, Query: query(1, "coffee", area)}, T0: t0},
		{Op: model.Op{Kind: model.OpInsert, Query: query(2, "tea", area)}, T0: t0},
		{Op: model.Op{Kind: model.OpObject, Obj: &model.Object{
			ID: 100, Terms: []string{"coffee", "shop"}, Loc: geo.Point{X: -75, Y: 35}}}, T0: t0},
	}})
	if err != nil {
		t.Fatal(err)
	}
	mb, err := cl.RecvMatches()
	if err != nil {
		t.Fatal(err)
	}
	if len(mb.Matches) != 1 {
		t.Fatalf("got %d matches, want 1", len(mb.Matches))
	}
	m := mb.Matches[0]
	if m.M.QueryID != 1 || m.M.ObjectID != 100 || m.M.Subscriber != 10 || m.M.Worker != 1 {
		t.Errorf("match = %+v", m.M)
	}
	if !m.T0.Equal(t0) {
		t.Errorf("T0 = %v, want %v", m.T0, t0)
	}
	// Drain barrier: the ack covers the batch sent above.
	ack, err := cl.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if ack.Done != 3 || ack.Emitted != 1 {
		t.Errorf("ack = %+v, want Done 3 Emitted 1", ack)
	}
	// Delete and re-publish: no match.
	err = cl.SendOps(wire.OpBatch{Ops: []wire.OpEnv{
		{Op: model.Op{Kind: model.OpDelete, Query: query(1, "coffee", area)}},
		{Op: model.Op{Kind: model.OpObject, Obj: &model.Object{
			ID: 101, Terms: []string{"coffee"}, Loc: geo.Point{X: -75, Y: 35}}}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if ack, err = cl.Drain(); err != nil || ack.Emitted != 1 {
		t.Fatalf("after delete: ack %+v, err %v", ack, err)
	}
	if got := w.QueryCount(); got != 1 {
		t.Errorf("QueryCount = %d, want 1", got)
	}
	if err := cl.CloseSend(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.RecvMatches(); err != io.EOF {
		t.Errorf("after goodbye: %v, want io.EOF", err)
	}
	cl.Close()
}

func TestWorkerStatePersistsAcrossReconnect(t *testing.T) {
	_, addr, _ := startWorker(t, WorkerOptions{})
	area := geo.NewRect(-80, 30, -70, 40)

	cl, err := wire.DialWorker(addr, testHello(0), wire.Backoff{Attempts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.SendOps(wire.OpBatch{Ops: []wire.OpEnv{
		{Op: model.Op{Kind: model.OpInsert, Query: query(7, "pizza", area)}},
	}}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Drain(); err != nil {
		t.Fatal(err)
	}
	cl.CloseSend()
	cl.Close()

	// Second session: the standing query must still match.
	cl2, err := wire.DialWorker(addr, testHello(0), wire.Backoff{Attempts: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	if err := cl2.SendOps(wire.OpBatch{Ops: []wire.OpEnv{
		{Op: model.Op{Kind: model.OpObject, Obj: &model.Object{
			ID: 200, Terms: []string{"pizza"}, Loc: geo.Point{X: -75, Y: 35}}}},
	}}); err != nil {
		t.Fatal(err)
	}
	mb, err := cl2.RecvMatches()
	if err != nil || len(mb.Matches) != 1 || mb.Matches[0].M.QueryID != 7 {
		t.Fatalf("reconnected session: matches %v, err %v", mb, err)
	}
	// End the session before the next dial: the worker serves its single
	// coordinator serially.
	cl2.CloseSend()
	for err == nil {
		_, err = cl2.RecvMatches()
	}

	// A reconnect with different geometry must be refused.
	bad := testHello(0)
	bad.Granularity = 32
	cl3, err := wire.DialWorker(addr, bad, wire.Backoff{Attempts: 3})
	if err == nil {
		// The handshake succeeds (geometry is checked after); the session
		// must then terminate without serving.
		if _, err := cl3.RecvMatches(); err == nil {
			t.Error("geometry-mismatched session served matches")
		}
		cl3.Close()
	}
}

// The worker hosts sliding-window top-k subscriptions: an insert with
// TopK set registers, a matching publish pushes a spontaneous Entered
// delta batch (counted by the drain barrier), and the fenced
// AdvanceWindow round expires it back out, returning the Left delta on
// the ack rather than the spontaneous stream.
func TestWorkerServesTopKDeltas(t *testing.T) {
	w, addr, _ := startWorker(t, WorkerOptions{})
	cl, err := wire.DialWorker(addr, testHello(0), wire.Backoff{Attempts: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	var mu sync.Mutex
	var got []window.Delta
	cl.SetDeltaHandler(func(_ uint64, ds []window.Delta) {
		mu.Lock()
		got = append(got, ds...)
		mu.Unlock()
	})
	q := query(9, "coffee", geo.NewRect(-80, 30, -70, 40))
	q.TopK, q.Window = 3, time.Minute
	t0 := time.Unix(1700000000, 0)
	if err := cl.SendOps(wire.OpBatch{Ops: []wire.OpEnv{
		{Op: model.Op{Kind: model.OpInsert, Query: q}, T0: t0},
		{Op: model.Op{Kind: model.OpObject, Obj: &model.Object{
			ID: 41, Terms: []string{"coffee"}, Loc: geo.Point{X: -75, Y: 35}}}, T0: t0},
	}}); err != nil {
		t.Fatal(err)
	}
	ack, err := cl.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if ack.Deltas != 1 {
		t.Errorf("ack.Deltas = %d, want 1", ack.Deltas)
	}
	if got := w.QueryCount(); got != 1 {
		t.Errorf("QueryCount = %d, want 1", got)
	}
	mu.Lock()
	if len(got) != 1 || !got[0].Entered || got[0].QueryID != 9 || got[0].MsgID != 41 {
		t.Fatalf("deltas = %+v, want one Entered for query 9 msg 41", got)
	}
	mu.Unlock()
	aa, err := cl.AdvanceWindow(t0.Add(2 * time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if len(aa.Deltas) != 1 || aa.Deltas[0].Entered || aa.Deltas[0].MsgID != 41 {
		t.Fatalf("advance ack deltas = %+v, want one Left for msg 41", aa.Deltas)
	}
	mu.Lock()
	n := len(got)
	mu.Unlock()
	if n != 1 {
		t.Errorf("spontaneous deltas after advance = %d, want still 1", n)
	}
}

// TestWorkerRecordsFenceEpoch: the informational fence frame must be
// accepted mid-stream and recorded, not torn down as an unknown frame.
func TestWorkerRecordsFenceEpoch(t *testing.T) {
	w, addr, _ := startWorker(t, WorkerOptions{})
	cl, err := wire.DialWorker(addr, testHello(0), wire.Backoff{Attempts: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.SendFence(7); err != nil {
		t.Fatal(err)
	}
	// Drain is FIFO-ordered behind the fence, so after it the epoch is
	// visible — and the session survived the control frame.
	if _, err := cl.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := w.Epoch(); got != 7 {
		t.Errorf("Epoch = %d, want 7", got)
	}
}

func TestMergerDedupAndCounts(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	var got []model.Match
	m := NewMerger(MergerOptions{OnMatch: func(mm model.Match) {
		mu.Lock()
		got = append(got, mm)
		mu.Unlock()
	}})
	go m.Serve(ctx, ln)

	cl, err := wire.DialMerger(ln.Addr().String(), wire.Hello{Task: 0}, wire.Backoff{Attempts: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	mk := func(q, o uint64) wire.MatchEnv {
		return wire.MatchEnv{M: model.Match{QueryID: q, ObjectID: o, Subscriber: q}}
	}
	if err := cl.SendMatches(wire.MatchBatch{Matches: []wire.MatchEnv{
		mk(1, 10), mk(1, 10), mk(2, 10), mk(1, 11),
	}}); err != nil {
		t.Fatal(err)
	}
	delivered, dups, err := cl.Counts()
	if err != nil {
		t.Fatal(err)
	}
	if delivered != 3 || dups != 1 {
		t.Errorf("counts = %d delivered, %d dups; want 3, 1", delivered, dups)
	}
	mu.Lock()
	n := len(got)
	mu.Unlock()
	if n != 3 {
		t.Errorf("OnMatch fired %d times, want 3", n)
	}
	cl.CloseSend()
}

// TestMergerSessionCountsAreIndependent: two sessions to one node must
// report their own shares, so a coordinator summing per-transport counts
// never double-counts.
func TestMergerSessionCountsAreIndependent(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m := NewMerger(MergerOptions{})
	go m.Serve(ctx, ln)

	cl1, err := wire.DialMerger(ln.Addr().String(), wire.Hello{Task: 0}, wire.Backoff{Attempts: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer cl1.Close()
	cl2, err := wire.DialMerger(ln.Addr().String(), wire.Hello{Task: 1}, wire.Backoff{Attempts: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	cl1.SendMatches(wire.MatchBatch{Matches: []wire.MatchEnv{
		{M: model.Match{QueryID: 1, ObjectID: 1}}, {M: model.Match{QueryID: 1, ObjectID: 2}},
	}})
	cl2.SendMatches(wire.MatchBatch{Matches: []wire.MatchEnv{
		{M: model.Match{QueryID: 2, ObjectID: 1}},
	}})
	d1, _, err := cl1.Counts()
	if err != nil {
		t.Fatal(err)
	}
	d2, _, err := cl2.Counts()
	if err != nil {
		t.Fatal(err)
	}
	if d1 != 2 || d2 != 1 {
		t.Errorf("session counts = %d, %d; want 2, 1", d1, d2)
	}
	total, _ := m.Counts()
	if total != 3 {
		t.Errorf("node total = %d, want 3", total)
	}
}

// TestWorkerServesLegacyGobClient: a pre-negotiation coordinator — gob
// everywhere, no Codec/Streams/SessionID in its Hello — must get the
// old single-connection protocol back from a new node, byte-for-byte
// compatible: gob Welcome without session fields, gob match batches,
// gob drain acks.
func TestWorkerServesLegacyGobClient(t *testing.T) {
	_, addr, _ := startWorker(t, WorkerOptions{})
	c, err := wire.Dial(addr, wire.Backoff{Attempts: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	h := testHello(1) // zero Codec/Streams/SessionID: what an old client sends
	h.Magic, h.Version = wire.Magic, wire.Version
	h.Role = wire.RoleCoordinator
	if err := c.Send(wire.TypeHello, h); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := c.RecvTimeout(5 * time.Second)
	if err != nil || typ != wire.TypeWelcome {
		t.Fatalf("welcome: type %d, err %v", typ, err)
	}
	var wel wire.Welcome
	if err := wire.DecodePayload(payload, &wel); err != nil {
		t.Fatal(err)
	}
	if wel.Codec != wire.CodecGob || wel.Streams != 0 {
		t.Fatalf("negotiated codec=%d streams=%d for a legacy hello, want gob/0", wel.Codec, wel.Streams)
	}
	area := geo.NewRect(-80, 30, -70, 40)
	err = c.Send(wire.TypeOpBatch, wire.OpBatch{Ops: []wire.OpEnv{
		{Op: model.Op{Kind: model.OpInsert, Query: query(1, "coffee", area)}},
		{Op: model.Op{Kind: model.OpObject, Obj: &model.Object{
			ID: 100, Terms: []string{"coffee"}, Loc: geo.Point{X: -75, Y: 35}}}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	typ, payload, err = c.RecvTimeout(5 * time.Second)
	if err != nil || typ != wire.TypeMatchBatch {
		t.Fatalf("match batch: type %d, err %v", typ, err)
	}
	var mb wire.MatchBatch
	if err := wire.DecodePayload(payload, &mb); err != nil {
		t.Fatal(err)
	}
	if len(mb.Matches) != 1 || mb.Matches[0].M.ObjectID != 100 {
		t.Fatalf("matches = %+v", mb.Matches)
	}
	if err := c.Send(wire.TypeDrain, wire.Drain{Seq: 7}); err != nil {
		t.Fatal(err)
	}
	typ, payload, err = c.RecvTimeout(5 * time.Second)
	if err != nil || typ != wire.TypeDrainAck {
		t.Fatalf("drain ack: type %d, err %v", typ, err)
	}
	var ack wire.DrainAck
	if err := wire.DecodePayload(payload, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Seq != 7 || ack.Done != 2 || ack.Emitted != 1 {
		t.Errorf("ack = %+v, want Seq 7 Done 2 Emitted 1", ack)
	}
}

// TestWorkerReassemblesBatchOrderAcrossStreams pins the turnstile down
// at the protocol level: the object batch (send-order sequence 1) lands
// on one data connection before the query-insert batch (sequence 0)
// lands on the other, and the worker must still process the insert
// first — the match only exists if sequence reassembly restores the
// order the two sockets scrambled.
func TestWorkerReassemblesBatchOrderAcrossStreams(t *testing.T) {
	_, addr, _ := startWorker(t, WorkerOptions{})
	h := testHello(1)
	h.Magic, h.Version = wire.Magic, wire.Version
	h.Codec = wire.CodecBinary
	h.Streams = 2
	h.SessionID = 424242
	dial := func(stream int) *wire.Conn {
		t.Helper()
		c, err := wire.Dial(addr, wire.Backoff{Attempts: 3})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		dh := h
		dh.Stream = stream
		if err := c.Send(wire.TypeHello, dh); err != nil {
			t.Fatal(err)
		}
		typ, payload, err := c.RecvTimeout(5 * time.Second)
		if err != nil || typ != wire.TypeWelcome {
			t.Fatalf("welcome on stream %d: type %d, err %v", stream, typ, err)
		}
		var wel wire.Welcome
		if err := wire.DecodePayload(payload, &wel); err != nil {
			t.Fatal(err)
		}
		if wel.Codec != wire.CodecBinary || wel.Streams != 2 {
			t.Fatalf("negotiated codec=%d streams=%d, want binary/2", wel.Codec, wel.Streams)
		}
		return c
	}
	ctrl := dial(0)
	dataA, dataB := dial(1), dial(2)
	area := geo.NewRect(-80, 30, -70, 40)
	insert := wire.AppendOpBatch(nil, 0, []wire.OpEnv{
		{Op: model.Op{Kind: model.OpInsert, Query: query(1, "coffee", area)}},
	})
	object := wire.AppendOpBatch(nil, 1, []wire.OpEnv{
		{Op: model.Op{Kind: model.OpObject, Obj: &model.Object{
			ID: 100, Terms: []string{"coffee"}, Loc: geo.Point{X: -75, Y: 35}}}},
	})
	// Out of order on the wire: the object reaches the node first and
	// must park in the turnstile until the insert is processed.
	if err := dataB.SendPayload(wire.TypeOpBatch, object); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if err := dataA.SendPayload(wire.TypeOpBatch, insert); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.SendPayload(wire.TypeDrain, wire.AppendDrain(nil, wire.Drain{Seq: 1, Ops: 2})); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := ctrl.RecvTimeout(5 * time.Second)
	if err != nil || typ != wire.TypeDrainAck {
		t.Fatalf("drain ack: type %d, err %v", typ, err)
	}
	ack, err := wire.DecodeBinDrainAck(payload)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Done != 2 || ack.Emitted != 1 {
		t.Errorf("ack = %+v, want Done 2 Emitted 1", ack)
	}
	// The match rides the data connection that carried the object batch.
	typ, payload, err = dataB.RecvTimeout(5 * time.Second)
	if err != nil || typ != wire.TypeMatchBatch {
		t.Fatalf("match batch: type %d, err %v", typ, err)
	}
	ms, err := wire.DecodeBinMatchBatch(payload, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || ms[0].M.ObjectID != 100 || ms[0].M.QueryID != 1 {
		t.Fatalf("matches = %+v", ms)
	}
}

// TestWorkerMultiStreamSessionBarrier drives a negotiated multi-stream
// session hard: batches round-robin across four data connections with
// no barrier between the query insert and the objects — the node's
// sequence reassembly must order them exactly as sent — and the drain
// barrier still accounts for every op and every match arrives before
// the ack returns.
func TestWorkerMultiStreamSessionBarrier(t *testing.T) {
	_, addr, _ := startWorker(t, WorkerOptions{})
	h := testHello(1)
	h.Streams = 4
	cl, err := wire.DialWorker(addr, h, wire.Backoff{Attempts: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.Codec() != wire.CodecBinary || cl.Streams() != 4 {
		t.Fatalf("negotiated codec=%d streams=%d, want binary/4", cl.Codec(), cl.Streams())
	}
	area := geo.NewRect(-80, 30, -70, 40)
	if err := cl.SendOps(wire.OpBatch{Ops: []wire.OpEnv{
		{Op: model.Op{Kind: model.OpInsert, Query: query(1, "coffee", area)}},
	}}); err != nil {
		t.Fatal(err)
	}
	// Deliberately no barrier here: the insert and the objects ride
	// different data connections, and only the node's batch-sequence
	// reassembly keeps the insert ahead of every object it must match.
	const objects = 300
	sent := 1
	for i := 0; i < objects; i += 10 {
		var ops []wire.OpEnv
		for j := i; j < i+10; j++ {
			ops = append(ops, wire.OpEnv{Op: model.Op{Kind: model.OpObject, Obj: &model.Object{
				ID: uint64(1000 + j), Terms: []string{"coffee"}, Loc: geo.Point{X: -75, Y: 35}}}})
		}
		if err := cl.SendOps(wire.OpBatch{Ops: ops}); err != nil {
			t.Fatal(err)
		}
		sent += 10
	}
	ack, err := cl.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if ack.Done != int64(sent) {
		t.Errorf("ack.Done = %d, want %d", ack.Done, sent)
	}
	if ack.Emitted != objects {
		t.Errorf("ack.Emitted = %d, want %d", ack.Emitted, objects)
	}
	// Every match was enqueued before the ack: drain them non-blocking
	// up to Emitted without racing a slow stream.
	var got int
	for got < int(ack.Emitted) {
		mb, err := cl.RecvMatches()
		if err != nil {
			t.Fatalf("after %d/%d matches: %v", got, ack.Emitted, err)
		}
		got += len(mb.Matches)
	}
	if err := cl.CloseSend(); err != nil {
		t.Fatal(err)
	}
}
