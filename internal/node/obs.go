package node

import (
	"ps2stream/internal/metrics"
	"ps2stream/internal/wire"
)

// Registry builds the worker node's metric registry: its cumulative op
// and match counters, live query count, the coordinator-announced routing
// epoch, and the process's wire-level frame/byte counters. Every series
// is func-backed, so the registry adds no cost to the serve loop — values
// are read from the node's existing atomics at scrape time.
func (w *Worker) Registry() *metrics.Registry {
	r := metrics.NewRegistry()
	r.CounterFunc("ps2_ops_processed_total",
		"Operations processed by this worker node.", w.done.Load)
	r.CounterFunc("ps2_matches_emitted_total",
		"Matches emitted by this worker node (before merger dedup).", w.emitted.Load)
	for _, k := range []struct {
		kind string
		src  func() int64
	}{
		{"object", w.objects.Load},
		{"insert", w.inserts.Load},
		{"delete", w.deletes.Load},
	} {
		r.CounterFunc("ps2_worker_ops_total",
			"Operations processed, by kind.", k.src, metrics.L("kind", k.kind))
	}
	r.GaugeFunc("ps2_worker_queries",
		"Live queries held by this worker node.",
		func() float64 { return float64(w.QueryCount()) })
	r.GaugeFunc("ps2_route_epoch",
		"Last routing epoch announced by the coordinator.",
		func() float64 { return float64(w.Epoch()) })
	wire.RegisterMetrics(r)
	return r
}

// Registry builds the merger node's metric registry: delivered/duplicate
// match counters plus the process's wire-level frame/byte counters, all
// func-backed (zero serve-loop cost).
func (m *Merger) Registry() *metrics.Registry {
	r := metrics.NewRegistry()
	r.CounterFunc("ps2_matches_delivered_total",
		"Matches delivered by this merger node after deduplication.", m.delivered.Load)
	r.CounterFunc("ps2_matches_duplicates_total",
		"Duplicate matches suppressed by this merger node.", m.duplicates.Load)
	wire.RegisterMetrics(r)
	return r
}
