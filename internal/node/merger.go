package node

import (
	"context"
	"net"
	"sync"
	"sync/atomic"

	"ps2stream/internal/dedup"
	"ps2stream/internal/model"
	"ps2stream/internal/wire"
)

// DefaultDedupWindow bounds a merger connection's duplicate-elimination
// memory in (query, object) pairs, mirroring core's default.
const DefaultDedupWindow = 1 << 15

// MergerOptions configures ServeMerger.
type MergerOptions struct {
	// Log receives serve-loop events; nil is silent.
	Log Logf
	// DedupWindow bounds per-connection duplicate-elimination memory
	// (default DefaultDedupWindow).
	DedupWindow int
	// OnMatch receives every deduplicated match. Called from connection
	// goroutines (possibly concurrently); it must lock its own state.
	OnMatch func(model.Match)
	// Once exits once every session has ended and at least one ended
	// cleanly (Goodbye), for run-to-completion clusters.
	Once bool
}

// Merger is a merger node: it deduplicates and delivers the match
// streams remote peers send it. Each connection is one upstream merger
// task's hash share, so duplicate elimination — and the counters
// reported over that connection — are per-connection: a coordinator
// summing its merger transports' counts gets each match exactly once
// even when several tasks share one node. The node-wide totals are
// Counts.
type Merger struct {
	opts MergerOptions

	delivered  atomic.Int64
	duplicates atomic.Int64
}

// NewMerger returns an idle merger node.
func NewMerger(opts MergerOptions) *Merger {
	if opts.DedupWindow <= 0 {
		opts.DedupWindow = DefaultDedupWindow
	}
	return &Merger{opts: opts}
}

// Counts reports cumulative delivered/duplicate counters across all
// sessions.
func (m *Merger) Counts() (delivered, duplicates int64) {
	return m.delivered.Load(), m.duplicates.Load()
}

// Serve accepts match-stream connections on ln until ctx is cancelled
// (or, with Once, until all sessions ended and one ended cleanly).
func (m *Merger) Serve(ctx context.Context, ln net.Listener) error {
	go func() {
		<-ctx.Done()
		ln.Close()
	}()
	var wg sync.WaitGroup
	var mu sync.Mutex
	active, sawClean := 0, false
	cleanExit := make(chan struct{}, 1)
	for {
		nc, err := ln.Accept()
		if err != nil {
			wg.Wait()
			if ctx.Err() != nil {
				return ctx.Err()
			}
			select {
			case <-cleanExit:
				return nil
			default:
				return err
			}
		}
		mu.Lock()
		active++
		mu.Unlock()
		wg.Add(1)
		go func(nc net.Conn) {
			defer wg.Done()
			clean, err := m.serveConn(wire.NewConn(nc))
			if err != nil {
				m.opts.Log.printf("merger: session from %s: %v", nc.RemoteAddr(), err)
			}
			mu.Lock()
			active--
			if clean {
				sawClean = true
			}
			exit := m.opts.Once && active == 0 && sawClean
			mu.Unlock()
			if exit {
				select {
				case cleanExit <- struct{}{}:
				default:
				}
				ln.Close()
			}
		}(nc)
	}
}

// serveConn runs one upstream session with its own dedup window.
func (m *Merger) serveConn(conn *wire.Conn) (clean bool, err error) {
	defer conn.Close()
	hello, err := recvHello(conn)
	if err != nil {
		return false, err
	}
	// Negotiate the match-batch codec: binary when the dialler speaks
	// it, gob for a pre-negotiation peer. Mergers have no data streams
	// to grant — one connection per upstream task keeps dedup windows
	// per-connection — so Streams stays zero.
	codec := wire.CodecGob
	if hello.Codec >= wire.CodecBinary {
		codec = wire.CodecBinary
	}
	wel := wire.Welcome{
		Magic: wire.Magic, Version: wire.Version, Role: wire.RoleMerger,
		Task: hello.Task, Codec: codec,
	}
	if err := conn.Send(wire.TypeWelcome, wel); err != nil {
		return false, err
	}
	win := dedup.NewWindow(m.opts.DedupWindow)
	var delivered, duplicates int64 // this session's share
	// Decode scratch reused across batches (binary codec only; gob
	// allocates its own).
	var scratch []wire.MatchEnv
	for {
		typ, payload, err := conn.Recv()
		if err != nil {
			return false, err
		}
		switch typ {
		case wire.TypeMatchBatch:
			var matches []wire.MatchEnv
			if codec == wire.CodecBinary {
				scratch, err = wire.DecodeBinMatchBatch(payload, scratch[:0])
				matches = scratch
			} else {
				var mb wire.MatchBatch
				err = wire.DecodePayload(payload, &mb)
				matches = mb.Matches
			}
			if err != nil {
				return false, err
			}
			for i := range matches {
				me := &matches[i]
				if !win.Observe([2]uint64{me.M.QueryID, me.M.ObjectID}) {
					duplicates++
					m.duplicates.Add(1)
					continue
				}
				if m.opts.OnMatch != nil {
					m.opts.OnMatch(me.M)
				}
				delivered++
				m.delivered.Add(1)
			}
		case wire.TypeStatsReq:
			var sr wire.StatsReq
			if err := wire.DecodePayload(payload, &sr); err != nil {
				return false, err
			}
			reply := wire.StatsReply{Seq: sr.Seq, Delivered: delivered, Duplicates: duplicates}
			if err := conn.Send(wire.TypeStatsReply, reply); err != nil {
				return false, err
			}
		case wire.TypeDrain:
			d, err := decodeDrain(payload, codec)
			if err != nil {
				return false, err
			}
			ack := wire.DrainAck{Seq: d.Seq, Emitted: delivered, Duplicates: duplicates}
			if err := sendDrainAck(conn, codec, ack); err != nil {
				return false, err
			}
		case wire.TypeGoodbye:
			_ = conn.Send(wire.TypeGoodbye, wire.Goodbye{})
			return true, nil
		default:
			m.opts.Log.printf("merger: skipping unknown frame type %d", typ)
		}
	}
}

// ListenAndServeMerger is the one-call form used by cmd/psnode.
func ListenAndServeMerger(ctx context.Context, addr string, opts MergerOptions) (*Merger, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	opts.Log.printf("merger: listening on %s", ln.Addr())
	m := NewMerger(opts)
	err = m.Serve(ctx, ln)
	return m, err
}
