// Package node implements the peer side of a multi-process PS2Stream
// deployment: the serve loops behind cmd/psnode. A worker node owns one
// worker task's query index and matches the operation stream a remote
// coordinator sends it; a merger node deduplicates and delivers the
// match stream. Both speak the internal/wire protocol; the coordinator
// side lives in internal/core (remote task placement) and the
// stand-alone binary in cmd/psnode.
//
// The paper's deployment (§VI) runs these roles as Storm tasks on a
// cluster; node is the repro's process-level equivalent. State lives in
// the node across connections, so a coordinator reconnecting after a
// network blip finds its standing queries intact.
package node

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ps2stream/internal/gi2"
	"ps2stream/internal/model"
	"ps2stream/internal/textutil"
	"ps2stream/internal/window"
	"ps2stream/internal/wire"
)

// Logf is the logging hook signature; nil loggers are silent.
type Logf func(format string, args ...any)

func (f Logf) printf(format string, args ...any) {
	if f != nil {
		f(format, args...)
	}
}

// WorkerOptions configures ServeWorker.
type WorkerOptions struct {
	// Log receives serve-loop events; nil is silent.
	Log Logf
	// Once exits after the first coordinator session ends cleanly
	// (Goodbye), instead of awaiting a reconnect. Deployment scripts and
	// CI use it for run-to-completion clusters.
	Once bool
}

// Worker is one worker task running out-of-process: a GI2 query index
// plus the wire serve loop feeding it. Create with NewWorker, drive
// with Serve.
type Worker struct {
	opts WorkerOptions

	mu   sync.Mutex
	ix   *gi2.Index
	task int
	// win holds the worker's cell window rings so migrated window state
	// survives a hop through this node (no top-k subscriptions run here
	// — the global top-k board lives in the coordinator — but a cell
	// share's ring entries install, persist, and extract unchanged).
	win *window.Store
	// geometry of the index, pinned by the first handshake.
	hello *wire.Hello
	// stateEpoch is the session epoch the current index state was built
	// under. A higher-epoch session is a recovery: the coordinator
	// replays the authoritative op history from its log, so state from
	// the superseded session must not survive into it — a replayed
	// object would otherwise match queries that were originally
	// inserted after it.
	stateEpoch uint64

	done    atomic.Int64 // ops processed
	emitted atomic.Int64 // matches emitted
	// Per-kind processed-op counters, reported in StatsReply so the
	// coordinator's load detector sees node-side processing progress.
	objects atomic.Int64
	inserts atomic.Int64
	deletes atomic.Int64
	epoch   atomic.Uint64
	// fence is the highest coordinator session epoch accepted so far. A
	// hello carrying a lower epoch is a stale coordinator session (the
	// coordinator bumps the epoch on every recovery redial) and is
	// refused before it can write through a superseded view.
	fence atomic.Uint64
}

// NewWorker returns an idle worker node.
func NewWorker(opts WorkerOptions) *Worker {
	return &Worker{opts: opts}
}

// Counts reports the worker's cumulative processed-op and emitted-match
// counters (tests, diagnostics).
func (w *Worker) Counts() (done, emitted int64) {
	return w.done.Load(), w.emitted.Load()
}

// Epoch reports the last routing epoch announced by the coordinator
// via a fence frame (0 until one arrives). Diagnostics only: a worker
// node does not route, so the epoch tags logs and stats, nothing more.
func (w *Worker) Epoch() uint64 { return w.epoch.Load() }

// QueryCount reports live queries held, excluding lazily-tombstoned
// deletions (tests, diagnostics).
func (w *Worker) QueryCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.ix == nil {
		return 0
	}
	return w.ix.LiveQueryCount()
}

// Serve accepts coordinator connections on ln until ctx is cancelled
// (or, with Once, until a session ends cleanly). Sessions are served one
// at a time: a worker task has exactly one coordinator, and serialising
// reconnects keeps the index single-writer without locking the hot path.
func (w *Worker) Serve(ctx context.Context, ln net.Listener) error {
	go func() {
		<-ctx.Done()
		ln.Close()
	}()
	for {
		nc, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		}
		clean, err := w.serveConn(wire.NewConn(nc))
		if err != nil {
			w.opts.Log.printf("worker: session from %s: %v", nc.RemoteAddr(), err)
		}
		if w.opts.Once && clean {
			return nil
		}
	}
}

// geometryEqual reports whether a reconnecting coordinator presents the
// same grid geometry the index was built over.
func geometryEqual(a, b *wire.Hello) bool {
	return a.Bounds == b.Bounds && a.Granularity == b.Granularity && a.Task == b.Task
}

// serveConn runs one coordinator session; clean reports a Goodbye-
// terminated session.
func (w *Worker) serveConn(conn *wire.Conn) (clean bool, err error) {
	defer conn.Close()
	hello, err := acceptHello(conn, wire.RoleWorker)
	if err != nil {
		return false, err
	}
	// Session fencing: refuse epochs below the highest accepted one.
	// Equal epochs are allowed — a retried dial of the same session is
	// not stale. The CAS loop publishes the new high-water mark before
	// any frame of this session is processed.
	for {
		cur := w.fence.Load()
		if hello.Epoch < cur {
			return false, fmt.Errorf("node: stale session epoch %d (fenced at %d)", hello.Epoch, cur)
		}
		if hello.Epoch == cur || w.fence.CompareAndSwap(cur, hello.Epoch) {
			break
		}
	}
	w.mu.Lock()
	if w.ix != nil && hello.Epoch > w.stateEpoch {
		// Recovery session: discard the superseded session's state and
		// let the coordinator's replay rebuild it (see stateEpoch).
		w.opts.Log.printf("worker: session epoch %d supersedes state from epoch %d; resetting for replay",
			hello.Epoch, w.stateEpoch)
		w.ix = nil
	}
	if w.ix == nil {
		w.stateEpoch = hello.Epoch
		stats := textutil.NewStats()
		for term, n := range hello.Terms {
			stats.AddWeighted(term, n)
		}
		w.ix = gi2.New(hello.Bounds, hello.Granularity, stats)
		w.win = window.NewStore(w.ix.Grid(), window.DefaultScorer, window.DefaultRingCap)
		w.task = hello.Task
		w.hello = &hello
		w.opts.Log.printf("worker: task %d over %v at granularity %d (%d sampled terms)",
			hello.Task, hello.Bounds, hello.Granularity, len(hello.Terms))
	} else if !geometryEqual(w.hello, &hello) {
		w.mu.Unlock()
		return false, fmt.Errorf("node: reconnect with different geometry (task %d %v/%d, had task %d %v/%d)",
			hello.Task, hello.Bounds, hello.Granularity, w.task, w.hello.Bounds, w.hello.Granularity)
	}
	w.mu.Unlock()

	// Liveness beacon: when the coordinator asked for heartbeats, a
	// sender goroutine pings at the requested cadence so the
	// coordinator's read deadline (4× this interval) only fires on a
	// genuinely dead connection, not on an idle-but-healthy one.
	// wire.Conn.Send serialises writers, so pings interleave safely with
	// the serve loop's replies.
	if hello.HeartbeatMillis > 0 {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			t := time.NewTicker(time.Duration(hello.HeartbeatMillis) * time.Millisecond)
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					if conn.Send(wire.TypePing, wire.Ping{}) != nil {
						return
					}
				}
			}
		}()
	}

	// Drain acks report THIS session's progress, not the node's lifetime
	// counters: after a crash recovery the coordinator already accounts
	// for matches received in dead sessions, so a cumulative ack would
	// double-count them against its drain barrier. For the first (only)
	// session of a run both baselines are zero and the ack is identical
	// to the historical cumulative one.
	done0, emitted0 := w.done.Load(), w.emitted.Load()

	// Match scratch reused across batches; capacity follows the largest
	// batch seen.
	var matches []wire.MatchEnv
	for {
		typ, payload, err := conn.Recv()
		if err != nil {
			return false, err
		}
		switch typ {
		case wire.TypeOpBatch:
			var ob wire.OpBatch
			if err := wire.DecodePayload(payload, &ob); err != nil {
				return false, err
			}
			matches = w.processBatch(ob, matches[:0])
			if len(matches) > 0 {
				if err := conn.Send(wire.TypeMatchBatch, wire.MatchBatch{Matches: matches}); err != nil {
					return false, err
				}
			}
		case wire.TypeDrain:
			var d wire.Drain
			if err := wire.DecodePayload(payload, &d); err != nil {
				return false, err
			}
			// Frames are FIFO and this loop is single-threaded, so every
			// batch received before the Drain has been fully processed
			// and its matches written before this ack.
			ack := wire.DrainAck{Seq: d.Seq, Done: w.done.Load() - done0, Emitted: w.emitted.Load() - emitted0}
			if err := conn.Send(wire.TypeDrainAck, ack); err != nil {
				return false, err
			}
		case wire.TypeStatsReq:
			var sr wire.StatsReq
			if err := wire.DecodePayload(payload, &sr); err != nil {
				return false, err
			}
			reply := wire.StatsReply{
				Seq: sr.Seq, Delivered: w.emitted.Load(), Queries: int64(w.QueryCount()),
				Objects: w.objects.Load(), Inserts: w.inserts.Load(), Deletes: w.deletes.Load(),
			}
			if err := conn.Send(wire.TypeStatsReply, reply); err != nil {
				return false, err
			}
		case wire.TypeCellStatsReq:
			var cr wire.CellStatsReq
			if err := wire.DecodePayload(payload, &cr); err != nil {
				return false, err
			}
			if err := conn.Send(wire.TypeCellStatsReply, w.cellStats(cr.Seq)); err != nil {
				return false, err
			}
		case wire.TypeExtractCells:
			var ex wire.ExtractCells
			if err := wire.DecodePayload(payload, &ex); err != nil {
				return false, err
			}
			// This loop is single-threaded and frames are FIFO, so the
			// share reflects every op batch the coordinator sent before
			// the request — the same barrier a local migration gets from
			// the in-process drain counters.
			if err := conn.Send(wire.TypeCellShare, w.extractCells(ex)); err != nil {
				return false, err
			}
		case wire.TypeInstallCells:
			var ic wire.InstallCells
			if err := wire.DecodePayload(payload, &ic); err != nil {
				return false, err
			}
			w.installCells(ic)
			if err := conn.Send(wire.TypeInstallAck, wire.InstallAck{Seq: ic.Seq}); err != nil {
				return false, err
			}
		case wire.TypeFence:
			var f wire.Fence
			if err := wire.DecodePayload(payload, &f); err != nil {
				return false, err
			}
			w.epoch.Store(f.Epoch)
		case wire.TypeResetWindow:
			w.mu.Lock()
			w.ix.ResetWindow()
			w.mu.Unlock()
		case wire.TypeGoodbye:
			// Acknowledge so the coordinator's read loop ends cleanly,
			// then end the session.
			_ = conn.Send(wire.TypeGoodbye, wire.Goodbye{})
			return true, nil
		default:
			w.opts.Log.printf("worker: skipping unknown frame type %d", typ)
		}
	}
}

// cellStats assembles the planner view of every non-empty cell: the
// coordinator's Phase I/II machinery consumes it exactly as it consumes
// a local worker's gi2.CellStats + CellTermStats.
func (w *Worker) cellStats(seq uint64) wire.CellStatsReply {
	reply := wire.CellStatsReply{Seq: seq}
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, cs := range w.ix.CellStats() {
		stat := wire.CellStat{
			Cell:      cs.CellID,
			Entries:   cs.Entries,
			ObjSeen:   cs.ObjSeen,
			SizeBytes: cs.SizeBytes,
			Load:      cs.Load,
		}
		for _, ts := range w.ix.CellTermStats(cs.CellID) {
			stat.Terms = append(stat.Terms, wire.CellTermStat{
				Term: ts.Term, Queries: ts.Queries, ObjHits: ts.ObjHits,
			})
		}
		reply.Cells = append(reply.Cells, stat)
	}
	return reply
}

// extractCells serves one ExtractCells request. With Remove false the
// shares are copies (queries and ring snapshot, nothing changes here);
// with Remove true whole-cell shares leave the index and release their
// ring, while key splits keep the cell ring for the remaining keys —
// mirroring the in-process migrateShare/migrateSplit extraction.
func (w *Worker) extractCells(ex wire.ExtractCells) wire.CellShare {
	share := wire.CellShare{Seq: ex.Seq}
	now := time.Now()
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, spec := range ex.Cells {
		p := wire.CellPayload{Cell: spec.Cell}
		switch {
		case !ex.Remove && spec.Keys == nil:
			p.Queries = w.ix.QueriesInCell(spec.Cell)
			p.Ring = w.win.SnapshotCell(spec.Cell, now)
		case !ex.Remove:
			p.Queries = w.ix.QueriesInCellKeys(spec.Cell, spec.Keys)
			p.Ring = w.win.SnapshotCell(spec.Cell, now)
		case spec.Keys == nil:
			p.Queries = w.ix.ExtractCell(spec.Cell)
			p.Ring, _ = w.win.DropCell(spec.Cell, now)
		default:
			p.Queries = w.ix.ExtractCellKeys(spec.Cell, spec.Keys)
			p.Ring = w.win.SnapshotCell(spec.Cell, now)
		}
		share.Cells = append(share.Cells, p)
	}
	return share
}

// installCells indexes the received cell shares and applies the
// reconciliation deletes (queries removed at the migration source
// between copy and routing flip).
func (w *Worker) installCells(ic wire.InstallCells) {
	now := time.Now()
	w.mu.Lock()
	defer w.mu.Unlock()
	for i := range ic.Cells {
		p := &ic.Cells[i]
		for _, q := range p.Queries {
			if q == nil {
				continue
			}
			if q.IsTopK() {
				// Top-k subscriptions cannot run here (no global board);
				// the coordinator refuses them with remote workers, so a
				// migrated one is protocol misuse. Refuse loudly.
				w.opts.Log.printf("worker: refusing migrated top-k query %d (unsupported over the wire)", q.ID)
				continue
			}
			w.ix.InsertAt(p.Cell, q)
		}
		if len(p.Ring) > 0 {
			w.win.AdoptCell(p.Cell, p.Ring, now)
		}
	}
	for _, id := range ic.Deletes {
		w.ix.Delete(id)
	}
}

// processBatch applies one operation batch to the index and appends the
// resulting match envelopes to out. The index lock is taken once per
// batch, mirroring the in-process worker bolt.
func (w *Worker) processBatch(ob wire.OpBatch, out []wire.MatchEnv) []wire.MatchEnv {
	var nObj, nIns, nDel int64
	w.mu.Lock()
	for i := range ob.Ops {
		env := &ob.Ops[i]
		switch env.Op.Kind {
		case model.OpInsert:
			nIns++
			q := env.Op.Query
			if q == nil {
				continue
			}
			if q.IsTopK() {
				// Sliding-window top-k state is reconciled on the
				// coordinator's global board, which a remote worker
				// cannot reach; the coordinator refuses to place top-k
				// subscriptions on remote workers, so receiving one is a
				// protocol misuse — refuse loudly rather than silently
				// degrade to boolean delivery.
				w.opts.Log.printf("worker: refusing top-k query %d (unsupported over the wire)", q.ID)
				continue
			}
			w.ix.Insert(q)
		case model.OpDelete:
			nDel++
			if env.Op.Query != nil {
				w.ix.Delete(env.Op.Query.ID)
			}
		case model.OpObject:
			nObj++
			obj := env.Op.Obj
			if obj == nil {
				continue
			}
			w.ix.Match(obj, func(q *model.Query) {
				out = append(out, wire.MatchEnv{
					M: model.Match{
						QueryID:    q.ID,
						Subscriber: q.Subscriber,
						ObjectID:   obj.ID,
						Worker:     w.task,
					},
					T0: env.T0,
				})
			})
		}
	}
	w.mu.Unlock()
	w.done.Add(int64(len(ob.Ops)))
	w.emitted.Add(int64(len(out)))
	if nObj > 0 {
		w.objects.Add(nObj)
	}
	if nIns > 0 {
		w.inserts.Add(nIns)
	}
	if nDel > 0 {
		w.deletes.Add(nDel)
	}
	return out
}

// acceptHello performs the server half of the handshake, answering with
// the given role.
func acceptHello(conn *wire.Conn, role string) (wire.Hello, error) {
	typ, payload, err := conn.RecvTimeout(wire.DefaultHandshakeTimeout)
	if err != nil {
		return wire.Hello{}, fmt.Errorf("node: awaiting hello: %w", err)
	}
	if typ != wire.TypeHello {
		return wire.Hello{}, fmt.Errorf("node: first frame has type %d, want hello", typ)
	}
	var hello wire.Hello
	if err := wire.DecodePayload(payload, &hello); err != nil {
		return wire.Hello{}, err
	}
	if err := wire.CheckHandshake(hello.Magic, hello.Version); err != nil {
		return wire.Hello{}, err
	}
	if hello.Role != wire.RoleCoordinator {
		return wire.Hello{}, fmt.Errorf("node: peer role %q, want %q", hello.Role, wire.RoleCoordinator)
	}
	wel := wire.Welcome{Magic: wire.Magic, Version: wire.Version, Role: role, Task: hello.Task}
	if err := conn.Send(wire.TypeWelcome, wel); err != nil {
		return wire.Hello{}, err
	}
	return hello, nil
}

// ListenAndServeWorker is the one-call form used by cmd/psnode: listen
// on addr and serve a worker until ctx ends.
func ListenAndServeWorker(ctx context.Context, addr string, opts WorkerOptions) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	opts.Log.printf("worker: listening on %s", ln.Addr())
	return NewWorker(opts).Serve(ctx, ln)
}
