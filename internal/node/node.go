// Package node implements the peer side of a multi-process PS2Stream
// deployment: the serve loops behind cmd/psnode. A worker node owns one
// worker task's query index and matches the operation stream a remote
// coordinator sends it; a merger node deduplicates and delivers the
// match stream. Both speak the internal/wire protocol; the coordinator
// side lives in internal/core (remote task placement) and the
// stand-alone binary in cmd/psnode.
//
// The paper's deployment (§VI) runs these roles as Storm tasks on a
// cluster; node is the repro's process-level equivalent. State lives in
// the node across connections, so a coordinator reconnecting after a
// network blip finds its standing queries intact.
package node

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ps2stream/internal/gi2"
	"ps2stream/internal/model"
	"ps2stream/internal/textutil"
	"ps2stream/internal/window"
	"ps2stream/internal/wire"
)

// Logf is the logging hook signature; nil loggers are silent.
type Logf func(format string, args ...any)

func (f Logf) printf(format string, args ...any) {
	if f != nil {
		f(format, args...)
	}
}

// WorkerOptions configures ServeWorker.
type WorkerOptions struct {
	// Log receives serve-loop events; nil is silent.
	Log Logf
	// Once exits after the first coordinator session ends cleanly
	// (Goodbye), instead of awaiting a reconnect. Deployment scripts and
	// CI use it for run-to-completion clusters.
	Once bool
}

// workerSession is one multi-stream coordinator session: the control
// connection that created it plus the data connections attached to its
// SessionID. The done/emitted counters implement the session op barrier
// (wire.Drain.Ops) that replaces cross-connection FIFO ordering.
type workerSession struct {
	id      uint64
	codec   int
	streams int

	// done counts ops fully processed — each data loop adds a batch's
	// ops only after the batch's matches are queued on its writer, so
	// "done ≥ barrier, then flush writers" guarantees the matches of
	// every counted op are on the wire before a barrier ack.
	done atomic.Int64
	// emitted counts matches queued toward the coordinator.
	emitted atomic.Int64
	// deltas counts window deltas queued toward the coordinator
	// (WindowDeltaBatch frames), counted before done like emitted so a
	// drain ack's Deltas total is final once the barrier is reached.
	deltas atomic.Int64

	// The turnstile reassembles the coordinator's send order: op batches
	// carry their send-order sequence and round-robin across the data
	// connections, and each data loop waits for its batch's turn before
	// processing. Decode and match encode/write stay parallel per
	// stream; only processing — already serialised by the index lock —
	// is ordered, so multi-stream transport preserves the exact total op
	// order a single connection would deliver (and with it the match
	// set: a query insert must index before a later object publishes).
	turnMu   sync.Mutex
	turnCond *sync.Cond
	nextTurn uint64 // next batch sequence to process (guarded by turnMu)
	turnDead bool   // set by close() to wake and fail waiters

	mu      sync.Mutex
	closed  bool
	conns   []*wire.Conn
	writers []*wire.FrameWriter
	dataWG  sync.WaitGroup
}

// newWorkerSession builds a session with its turnstile initialised.
func newWorkerSession(id uint64, codec, streams int) *workerSession {
	s := &workerSession{id: id, codec: codec, streams: streams}
	s.turnCond = sync.NewCond(&s.turnMu)
	return s
}

// awaitTurn blocks until batch seq is next in the session's send order.
// It fails instead of blocking forever when the session is torn down
// (a sibling stream broke, or a newer session superseded this one).
func (s *workerSession) awaitTurn(seq uint64) error {
	s.turnMu.Lock()
	defer s.turnMu.Unlock()
	for s.nextTurn != seq {
		if s.turnDead {
			return fmt.Errorf("node: session %d closed awaiting batch %d (next %d)", s.id, seq, s.nextTurn)
		}
		s.turnCond.Wait()
	}
	return nil
}

// finishTurn hands the turnstile to the next batch in send order.
func (s *workerSession) finishTurn() {
	s.turnMu.Lock()
	s.nextTurn++
	s.turnMu.Unlock()
	s.turnCond.Broadcast()
}

// attach registers a data connection with the session; the caller must
// call dataWG.Done when its loop exits.
func (s *workerSession) attach(c *wire.Conn, fw *wire.FrameWriter) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("node: session %d already closed", s.id)
	}
	if len(s.conns) >= s.streams {
		return fmt.Errorf("node: session %d already has %d data connections", s.id, s.streams)
	}
	s.conns = append(s.conns, c)
	s.writers = append(s.writers, fw)
	s.dataWG.Add(1)
	return nil
}

// close tears the session's data connections down. Idempotent; called on
// control-session end and on supersession by a newer session.
func (s *workerSession) close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := append([]*wire.Conn(nil), s.conns...)
	s.mu.Unlock()
	// Wake turnstile waiters: their predecessor batch may never arrive
	// now, and blocking forever would wedge the data loops.
	s.turnMu.Lock()
	s.turnDead = true
	s.turnMu.Unlock()
	s.turnCond.Broadcast()
	for _, c := range conns {
		c.Close()
	}
}

func (s *workerSession) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// flushWriters blocks until every match batch queued before the call is
// written and flushed on its data connection.
func (s *workerSession) flushWriters() error {
	s.mu.Lock()
	writers := append([]*wire.FrameWriter(nil), s.writers...)
	s.mu.Unlock()
	for _, fw := range writers {
		if err := fw.Drain(); err != nil {
			return err
		}
	}
	return nil
}

// Worker is one worker task running out-of-process: a GI2 query index
// plus the wire serve loop feeding it. Create with NewWorker, drive
// with Serve.
type Worker struct {
	opts WorkerOptions

	mu   sync.Mutex
	ix   *gi2.Index
	task int
	// win holds the worker's share of the sliding-window top-k state:
	// cell rings and per-subscription heaps, exactly like an in-process
	// worker. Local membership changes stream back to the coordinator's
	// global board as WindowDeltaBatch frames (or inside control acks);
	// the board, not this node, decides global top-k membership.
	win *window.Store
	// coordNow is the latest coordinator clock reading observed — the
	// max of op-envelope T0 stamps and AdvanceWindow timestamps — so
	// window liveness checks here run in the same clock domain as the
	// coordinator's, not this host's wall clock. Guarded by mu.
	coordNow time.Time
	// geometry of the index, pinned by the first handshake.
	hello *wire.Hello
	// stateEpoch is the session epoch the current index state was built
	// under. A higher-epoch session is a recovery: the coordinator
	// replays the authoritative op history from its log, so state from
	// the superseded session must not survive into it — a replayed
	// object would otherwise match queries that were originally
	// inserted after it.
	stateEpoch uint64

	// sess is the live multi-stream session (nil before the first
	// negotiated handshake and for legacy single-connection sessions).
	sessMu sync.Mutex
	sess   *workerSession

	done    atomic.Int64 // ops processed
	emitted atomic.Int64 // matches emitted
	deltasN atomic.Int64 // window deltas emitted
	// Per-kind processed-op counters, reported in StatsReply so the
	// coordinator's load detector sees node-side processing progress.
	objects atomic.Int64
	inserts atomic.Int64
	deletes atomic.Int64
	epoch   atomic.Uint64
	// fence is the highest coordinator session epoch accepted so far. A
	// hello carrying a lower epoch is a stale coordinator session (the
	// coordinator bumps the epoch on every recovery redial) and is
	// refused before it can write through a superseded view.
	fence atomic.Uint64
}

// NewWorker returns an idle worker node.
func NewWorker(opts WorkerOptions) *Worker {
	return &Worker{opts: opts}
}

// Counts reports the worker's cumulative processed-op and emitted-match
// counters (tests, diagnostics).
func (w *Worker) Counts() (done, emitted int64) {
	return w.done.Load(), w.emitted.Load()
}

// Epoch reports the last routing epoch announced by the coordinator
// via a fence frame (0 until one arrives). Diagnostics only: a worker
// node does not route, so the epoch tags logs and stats, nothing more.
func (w *Worker) Epoch() uint64 { return w.epoch.Load() }

// QueryCount reports live queries held, excluding lazily-tombstoned
// deletions (tests, diagnostics).
func (w *Worker) QueryCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.ix == nil {
		return 0
	}
	return w.ix.LiveQueryCount()
}

// Serve accepts coordinator connections on ln until ctx is cancelled
// (or, with Once, until a control session ends cleanly). Connections are
// served concurrently: a multi-stream session is one control connection
// plus its data connections, all live at once. The index itself stays
// single-writer per batch under the worker mutex.
func (w *Worker) Serve(ctx context.Context, ln net.Listener) error {
	go func() {
		<-ctx.Done()
		ln.Close()
	}()
	var wg sync.WaitGroup
	var mu sync.Mutex
	sawClean := false
	cleanExit := make(chan struct{}, 1)
	for {
		nc, err := ln.Accept()
		if err != nil {
			wg.Wait()
			if ctx.Err() != nil {
				return ctx.Err()
			}
			select {
			case <-cleanExit:
				return nil
			default:
				return err
			}
		}
		wg.Add(1)
		go func(nc net.Conn) {
			defer wg.Done()
			clean, err := w.serveConn(wire.NewConn(nc))
			if err != nil {
				w.opts.Log.printf("worker: session from %s: %v", nc.RemoteAddr(), err)
			}
			mu.Lock()
			if clean {
				sawClean = true
			}
			exit := w.opts.Once && sawClean
			mu.Unlock()
			if exit {
				select {
				case cleanExit <- struct{}{}:
				default:
				}
				ln.Close()
			}
		}(nc)
	}
}

// geometryEqual reports whether a reconnecting coordinator presents the
// same grid geometry the index was built over.
func geometryEqual(a, b *wire.Hello) bool {
	return a.Bounds == b.Bounds && a.Granularity == b.Granularity && a.Task == b.Task
}

// serveConn dispatches one accepted connection: a data connection
// attaches to the session its Hello names, a control connection (Stream
// 0, also every pre-negotiation coordinator) runs a session. clean
// reports a Goodbye-terminated control session.
func (w *Worker) serveConn(conn *wire.Conn) (clean bool, err error) {
	defer conn.Close()
	hello, err := recvHello(conn)
	if err != nil {
		return false, err
	}
	if hello.Stream > 0 {
		return false, w.serveData(conn, hello)
	}
	return w.serveControl(conn, hello)
}

// serveControl runs one coordinator session's control connection.
func (w *Worker) serveControl(conn *wire.Conn, hello wire.Hello) (clean bool, err error) {
	// Session fencing: refuse epochs below the highest accepted one.
	// Equal epochs are allowed — a retried dial of the same session is
	// not stale. The CAS loop publishes the new high-water mark before
	// any frame of this session is processed.
	for {
		cur := w.fence.Load()
		if hello.Epoch < cur {
			return false, fmt.Errorf("node: stale session epoch %d (fenced at %d)", hello.Epoch, cur)
		}
		if hello.Epoch == cur || w.fence.CompareAndSwap(cur, hello.Epoch) {
			break
		}
	}
	w.mu.Lock()
	if w.ix != nil && hello.Epoch > w.stateEpoch {
		// Recovery session: discard the superseded session's state and
		// let the coordinator's replay rebuild it (see stateEpoch).
		w.opts.Log.printf("worker: session epoch %d supersedes state from epoch %d; resetting for replay",
			hello.Epoch, w.stateEpoch)
		w.ix = nil
	}
	if w.ix == nil {
		w.stateEpoch = hello.Epoch
		stats := textutil.NewStats()
		for term, n := range hello.Terms {
			stats.AddWeighted(term, n)
		}
		w.ix = gi2.New(hello.Bounds, hello.Granularity, stats)
		w.win = window.NewStore(w.ix.Grid(), window.DefaultScorer, window.DefaultRingCap)
		w.task = hello.Task
		w.hello = &hello
		w.opts.Log.printf("worker: task %d over %v at granularity %d (%d sampled terms)",
			hello.Task, hello.Bounds, hello.Granularity, len(hello.Terms))
	} else if !geometryEqual(w.hello, &hello) {
		w.mu.Unlock()
		return false, fmt.Errorf("node: reconnect with different geometry (task %d %v/%d, had task %d %v/%d)",
			hello.Task, hello.Bounds, hello.Granularity, w.task, w.hello.Bounds, w.hello.Granularity)
	}
	w.mu.Unlock()

	// Negotiate the session shape: the binary codec and a multi-stream
	// session go together, and both require the coordinator to have
	// asked (SessionID and Streams are zero from a pre-negotiation
	// peer, which pins the session to single-connection gob).
	codec, streams := wire.CodecGob, 0
	if hello.SessionID != 0 && hello.Streams > 0 && hello.Codec >= wire.CodecBinary {
		codec = wire.CodecBinary
		streams = hello.Streams
		if streams > wire.MaxStreams {
			streams = wire.MaxStreams
		}
	}
	var sess *workerSession
	if streams > 0 {
		sess = newWorkerSession(hello.SessionID, codec, streams)
		// Register before the Welcome: the coordinator attaches data
		// connections only after reading it, so the session must be
		// findable by then. A still-live previous session is superseded —
		// its coordinator is gone or reconnecting.
		w.sessMu.Lock()
		old := w.sess
		w.sess = sess
		w.sessMu.Unlock()
		if old != nil {
			old.close()
		}
		defer sess.close()
	}
	wel := wire.Welcome{
		Magic: wire.Magic, Version: wire.Version, Role: wire.RoleWorker,
		Task: hello.Task, Codec: codec, Streams: streams,
	}
	if err := conn.Send(wire.TypeWelcome, wel); err != nil {
		return false, err
	}

	// Liveness beacon: when the coordinator asked for heartbeats, a
	// sender goroutine pings at the requested cadence so the
	// coordinator's read deadline (4× this interval) only fires on a
	// genuinely dead connection, not on an idle-but-healthy one.
	// wire.Conn.Send serialises writers, so pings interleave safely with
	// the serve loop's replies.
	if hello.HeartbeatMillis > 0 {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			t := time.NewTicker(time.Duration(hello.HeartbeatMillis) * time.Millisecond)
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					if conn.Send(wire.TypePing, wire.Ping{}) != nil {
						return
					}
				}
			}
		}()
	}

	if sess != nil {
		return w.controlLoop(conn, sess)
	}
	return w.legacyLoop(conn)
}

// controlLoop serves a multi-stream session's control connection: the
// barrier rounds (drain, stats, migration) and session teardown. Op
// batches arrive on the session's data connections, so every round that
// used to rely on single-connection FIFO first awaits the session op
// barrier its request carries.
func (w *Worker) controlLoop(conn *wire.Conn, sess *workerSession) (clean bool, err error) {
	for {
		typ, payload, err := conn.Recv()
		if err != nil {
			return false, err
		}
		switch typ {
		case wire.TypeDrain:
			d, err := decodeDrain(payload, sess.codec)
			if err != nil {
				return false, err
			}
			if err := w.awaitOps(sess, d.Ops); err != nil {
				return false, err
			}
			// The barrier counted the ops; flushing the writers puts the
			// matches those ops produced on the wire before the ack, so
			// the coordinator can treat "ack received" as "matches
			// received" exactly as it could under FIFO.
			if err := sess.flushWriters(); err != nil {
				return false, err
			}
			ack := wire.DrainAck{Seq: d.Seq, Done: sess.done.Load(), Emitted: sess.emitted.Load(), Deltas: sess.deltas.Load()}
			if err := sendDrainAck(conn, sess.codec, ack); err != nil {
				return false, err
			}
		case wire.TypeStatsReq:
			var sr wire.StatsReq
			if err := wire.DecodePayload(payload, &sr); err != nil {
				return false, err
			}
			if err := w.awaitOps(sess, sr.Ops); err != nil {
				return false, err
			}
			if err := conn.Send(wire.TypeStatsReply, w.statsReply(sr.Seq)); err != nil {
				return false, err
			}
		case wire.TypeCellStatsReq:
			var cr wire.CellStatsReq
			if err := wire.DecodePayload(payload, &cr); err != nil {
				return false, err
			}
			if err := w.awaitOps(sess, cr.Ops); err != nil {
				return false, err
			}
			if err := conn.Send(wire.TypeCellStatsReply, w.cellStats(cr.Seq)); err != nil {
				return false, err
			}
		case wire.TypeExtractCells:
			var ex wire.ExtractCells
			if err := wire.DecodePayload(payload, &ex); err != nil {
				return false, err
			}
			// The migration barrier: the share must reflect every op
			// batch the coordinator sent before the request, which the
			// session op barrier guarantees where FIFO no longer can.
			if err := w.awaitOps(sess, ex.Ops); err != nil {
				return false, err
			}
			if err := conn.Send(wire.TypeCellShare, w.extractCells(ex)); err != nil {
				return false, err
			}
		case wire.TypeInstallCells:
			var ic wire.InstallCells
			if err := wire.DecodePayload(payload, &ic); err != nil {
				return false, err
			}
			if err := conn.Send(wire.TypeInstallAck, w.installCells(ic)); err != nil {
				return false, err
			}
		case wire.TypeAdvanceWindow:
			a, err := decodeAdvanceWindow(payload, sess.codec)
			if err != nil {
				return false, err
			}
			// Expiry observes every op batch sent before the round, the
			// same barrier a drain provides — otherwise the advance could
			// expire a window the in-flight batches are about to refill
			// under an older clock reading.
			if err := w.awaitOps(sess, a.Ops); err != nil {
				return false, err
			}
			if err := sendAdvanceAck(conn, sess.codec, w.advanceWindow(a)); err != nil {
				return false, err
			}
		case wire.TypeFence:
			f, err := decodeFence(payload, sess.codec)
			if err != nil {
				return false, err
			}
			w.epoch.Store(f.Epoch)
		case wire.TypeResetWindow:
			w.mu.Lock()
			w.ix.ResetWindow()
			w.mu.Unlock()
		case wire.TypeGoodbye:
			// The coordinator says goodbye on the data connections first,
			// so waiting for their loops lets the final match flushes
			// finish before the session — and, with Once, the process —
			// goes away. Bounded: a data connection that already died
			// never says goodbye.
			waitTimeout(&sess.dataWG, 10*time.Second)
			_ = conn.Send(wire.TypeGoodbye, wire.Goodbye{})
			return true, nil
		default:
			w.opts.Log.printf("worker: skipping unknown frame type %d", typ)
		}
	}
}

// legacyLoop serves a pre-negotiation coordinator: every frame kind on
// one gob connection, ordered by FIFO. Drain acks report THIS session's
// progress, not the node's lifetime counters: after a crash recovery
// the coordinator already accounts for matches received in dead
// sessions, so a cumulative ack would double-count them against its
// drain barrier.
func (w *Worker) legacyLoop(conn *wire.Conn) (clean bool, err error) {
	done0, emitted0, deltas0 := w.done.Load(), w.emitted.Load(), w.deltasN.Load()

	// Match and delta scratch reused across batches; capacity follows
	// the largest batch seen.
	var matches []wire.MatchEnv
	var deltas []window.Delta
	for {
		typ, payload, err := conn.Recv()
		if err != nil {
			return false, err
		}
		switch typ {
		case wire.TypeOpBatch:
			var ob wire.OpBatch
			if err := wire.DecodePayload(payload, &ob); err != nil {
				return false, err
			}
			var epoch uint64
			matches, deltas, epoch = w.processOps(ob.Ops, matches[:0], deltas[:0])
			if len(matches) > 0 {
				if err := conn.Send(wire.TypeMatchBatch, wire.MatchBatch{Matches: matches}); err != nil {
					return false, err
				}
			}
			if len(deltas) > 0 {
				if err := conn.Send(wire.TypeWindowDeltaBatch, wire.WindowDeltaBatch{Epoch: epoch, Deltas: deltas}); err != nil {
					return false, err
				}
			}
		case wire.TypeDrain:
			var d wire.Drain
			if err := wire.DecodePayload(payload, &d); err != nil {
				return false, err
			}
			// Frames are FIFO and this loop is single-threaded, so every
			// batch received before the Drain has been fully processed
			// and its matches written before this ack.
			ack := wire.DrainAck{
				Seq: d.Seq, Done: w.done.Load() - done0,
				Emitted: w.emitted.Load() - emitted0, Deltas: w.deltasN.Load() - deltas0,
			}
			if err := conn.Send(wire.TypeDrainAck, ack); err != nil {
				return false, err
			}
		case wire.TypeStatsReq:
			var sr wire.StatsReq
			if err := wire.DecodePayload(payload, &sr); err != nil {
				return false, err
			}
			if err := conn.Send(wire.TypeStatsReply, w.statsReply(sr.Seq)); err != nil {
				return false, err
			}
		case wire.TypeCellStatsReq:
			var cr wire.CellStatsReq
			if err := wire.DecodePayload(payload, &cr); err != nil {
				return false, err
			}
			if err := conn.Send(wire.TypeCellStatsReply, w.cellStats(cr.Seq)); err != nil {
				return false, err
			}
		case wire.TypeExtractCells:
			var ex wire.ExtractCells
			if err := wire.DecodePayload(payload, &ex); err != nil {
				return false, err
			}
			// This loop is single-threaded and frames are FIFO, so the
			// share reflects every op batch the coordinator sent before
			// the request — the same barrier a local migration gets from
			// the in-process drain counters.
			if err := conn.Send(wire.TypeCellShare, w.extractCells(ex)); err != nil {
				return false, err
			}
		case wire.TypeInstallCells:
			var ic wire.InstallCells
			if err := wire.DecodePayload(payload, &ic); err != nil {
				return false, err
			}
			if err := conn.Send(wire.TypeInstallAck, w.installCells(ic)); err != nil {
				return false, err
			}
		case wire.TypeAdvanceWindow:
			var a wire.AdvanceWindow
			if err := wire.DecodePayload(payload, &a); err != nil {
				return false, err
			}
			// FIFO and single-threaded: every op batch sent before the
			// round is already processed, the same barrier awaitOps gives
			// a multi-stream session.
			if err := conn.Send(wire.TypeAdvanceAck, w.advanceWindow(a)); err != nil {
				return false, err
			}
		case wire.TypeFence:
			var f wire.Fence
			if err := wire.DecodePayload(payload, &f); err != nil {
				return false, err
			}
			w.epoch.Store(f.Epoch)
		case wire.TypeResetWindow:
			w.mu.Lock()
			w.ix.ResetWindow()
			w.mu.Unlock()
		case wire.TypeGoodbye:
			// Acknowledge so the coordinator's read loop ends cleanly,
			// then end the session.
			_ = conn.Send(wire.TypeGoodbye, wire.Goodbye{})
			return true, nil
		default:
			w.opts.Log.printf("worker: skipping unknown frame type %d", typ)
		}
	}
}

// serveData runs one data connection of a multi-stream session: binary
// op batches in, binary match batches out through a pipelined writer.
func (w *Worker) serveData(conn *wire.Conn, hello wire.Hello) error {
	w.sessMu.Lock()
	sess := w.sess
	w.sessMu.Unlock()
	if sess == nil || sess.id != hello.SessionID || hello.Stream > sess.streams {
		// Refuse with a Goodbye so the dialler fails fast (a protocol
		// refusal) instead of burning its retry budget on a session that
		// will never exist.
		_ = conn.Send(wire.TypeGoodbye, wire.Goodbye{})
		return fmt.Errorf("node: refusing data connection for session %d stream %d", hello.SessionID, hello.Stream)
	}
	fw := wire.NewFrameWriter(conn, 0)
	defer fw.Stop()
	if err := sess.attach(conn, fw); err != nil {
		_ = conn.Send(wire.TypeGoodbye, wire.Goodbye{})
		return err
	}
	defer sess.dataWG.Done()
	wel := wire.Welcome{
		Magic: wire.Magic, Version: wire.Version, Role: wire.RoleWorker,
		Task: hello.Task, Codec: sess.codec, Streams: sess.streams,
	}
	if err := conn.Send(wire.TypeWelcome, wel); err != nil {
		return err
	}
	// Decode, match, and delta scratch reused across batches; the binary
	// codec decodes into them without per-frame allocations.
	var ops []wire.OpEnv
	var matches []wire.MatchEnv
	var deltas []window.Delta
	for {
		typ, payload, err := conn.Recv()
		if err != nil {
			// A broken data connection breaks the whole session; tear it
			// down so the control loop and sibling streams fail too
			// instead of wedging on a barrier that can never complete.
			if !sess.isClosed() {
				sess.close()
				return err
			}
			return nil
		}
		switch typ {
		case wire.TypeOpBatch:
			var seq uint64
			ops, seq, err = wire.DecodeBinOpBatch(payload, ops[:0])
			if err != nil {
				sess.close()
				return err
			}
			// Reassemble the coordinator's send order across streams:
			// process this batch only when every earlier-sequenced batch
			// (possibly in flight on a sibling connection) is done.
			if err := sess.awaitTurn(seq); err != nil {
				return err
			}
			var epoch uint64
			matches, deltas, epoch = w.processOps(ops, matches[:0], deltas[:0])
			// Order matters for the session barrier: matches and deltas
			// are queued (and counted) before done advances, so "done ≥
			// barrier" implies both are behind a writer flush, never lost.
			sess.emitted.Add(int64(len(matches)))
			if len(matches) > 0 {
				buf := wire.GetBuf()
				buf.B = wire.AppendMatchBatch(buf.B, matches)
				if err := fw.Send(wire.TypeMatchBatch, buf); err != nil {
					sess.close()
					return err
				}
			}
			sess.deltas.Add(int64(len(deltas)))
			if len(deltas) > 0 {
				buf := wire.GetBuf()
				buf.B = wire.AppendWindowDeltaBatch(buf.B, epoch, deltas)
				if err := fw.Send(wire.TypeWindowDeltaBatch, buf); err != nil {
					sess.close()
					return err
				}
			}
			sess.done.Add(int64(len(ops)))
			sess.finishTurn()
		case wire.TypeGoodbye:
			// Flush remaining matches, answer in kind, and let the
			// coordinator's data read loop end cleanly.
			if err := fw.Drain(); err != nil {
				sess.close()
				return err
			}
			_ = conn.Send(wire.TypeGoodbye, wire.Goodbye{})
			return nil
		case wire.TypePing:
		default:
			w.opts.Log.printf("worker: skipping unknown frame type %d on data stream", typ)
		}
	}
}

// awaitOps blocks until the session has processed at least ops
// operations — the multi-stream stand-in for FIFO request ordering. Zero
// waives the barrier (nothing sent yet, or a legacy-style request).
func (w *Worker) awaitOps(sess *workerSession, ops int64) error {
	if ops <= 0 {
		return nil
	}
	deadline := time.Now().Add(wire.DefaultControlTimeout)
	for sess.done.Load() < ops {
		if sess.isClosed() {
			return fmt.Errorf("node: session closed awaiting op barrier (%d of %d)", sess.done.Load(), ops)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("node: op barrier timed out (%d of %d ops)", sess.done.Load(), ops)
		}
		time.Sleep(200 * time.Microsecond)
	}
	return nil
}

// statsReply assembles the worker's lifetime counters.
func (w *Worker) statsReply(seq uint64) wire.StatsReply {
	return wire.StatsReply{
		Seq: seq, Delivered: w.emitted.Load(), Queries: int64(w.QueryCount()),
		Objects: w.objects.Load(), Inserts: w.inserts.Load(), Deletes: w.deletes.Load(),
	}
}

// decodeDrain decodes a Drain frame by the session codec.
func decodeDrain(payload []byte, codec int) (wire.Drain, error) {
	if codec == wire.CodecBinary {
		return wire.DecodeBinDrain(payload)
	}
	var d wire.Drain
	err := wire.DecodePayload(payload, &d)
	return d, err
}

// advanceWindow runs one coordinator-clocked expiry sweep and returns
// the resulting membership deltas, epoch-tagged like every other delta
// batch this node produces.
func (w *Worker) advanceWindow(a wire.AdvanceWindow) wire.AdvanceAck {
	w.mu.Lock()
	defer w.mu.Unlock()
	if a.Now.After(w.coordNow) {
		w.coordNow = a.Now
	}
	// Not counted in deltasN: ack-carried deltas are received
	// synchronously with the round, so drain accounting (which covers
	// the spontaneous frame stream) must not wait for them.
	return wire.AdvanceAck{Seq: a.Seq, Epoch: w.stateEpoch, Deltas: w.win.Advance(w.coordNow)}
}

// decodeAdvanceWindow decodes an AdvanceWindow frame by the session codec.
func decodeAdvanceWindow(payload []byte, codec int) (wire.AdvanceWindow, error) {
	if codec == wire.CodecBinary {
		return wire.DecodeBinAdvanceWindow(payload)
	}
	var a wire.AdvanceWindow
	err := wire.DecodePayload(payload, &a)
	return a, err
}

// sendAdvanceAck encodes an AdvanceAck by the session codec.
func sendAdvanceAck(conn *wire.Conn, codec int, ack wire.AdvanceAck) error {
	if codec == wire.CodecBinary {
		buf := wire.GetBuf()
		buf.B = wire.AppendAdvanceAck(buf.B, ack)
		err := conn.SendPayload(wire.TypeAdvanceAck, buf.B)
		wire.PutBuf(buf)
		return err
	}
	return conn.Send(wire.TypeAdvanceAck, ack)
}

// decodeFence decodes a Fence frame by the session codec.
func decodeFence(payload []byte, codec int) (wire.Fence, error) {
	if codec == wire.CodecBinary {
		return wire.DecodeBinFence(payload)
	}
	var f wire.Fence
	err := wire.DecodePayload(payload, &f)
	return f, err
}

// sendDrainAck encodes a DrainAck by the session codec.
func sendDrainAck(conn *wire.Conn, codec int, ack wire.DrainAck) error {
	if codec == wire.CodecBinary {
		buf := wire.GetBuf()
		buf.B = wire.AppendDrainAck(buf.B, ack)
		err := conn.SendPayload(wire.TypeDrainAck, buf.B)
		wire.PutBuf(buf)
		return err
	}
	return conn.Send(wire.TypeDrainAck, ack)
}

// waitTimeout waits on wg for at most d; false reports a timeout.
func waitTimeout(wg *sync.WaitGroup, d time.Duration) bool {
	ch := make(chan struct{})
	go func() {
		wg.Wait()
		close(ch)
	}()
	select {
	case <-ch:
		return true
	case <-time.After(d):
		return false
	}
}

// cellStats assembles the planner view of every non-empty cell: the
// coordinator's Phase I/II machinery consumes it exactly as it consumes
// a local worker's gi2.CellStats + CellTermStats.
func (w *Worker) cellStats(seq uint64) wire.CellStatsReply {
	reply := wire.CellStatsReply{Seq: seq}
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, cs := range w.ix.CellStats() {
		stat := wire.CellStat{
			Cell:      cs.CellID,
			Entries:   cs.Entries,
			ObjSeen:   cs.ObjSeen,
			SizeBytes: cs.SizeBytes,
			Load:      cs.Load,
		}
		for _, ts := range w.ix.CellTermStats(cs.CellID) {
			stat.Terms = append(stat.Terms, wire.CellTermStat{
				Term: ts.Term, Queries: ts.Queries, ObjHits: ts.ObjHits,
			})
		}
		reply.Cells = append(reply.Cells, stat)
	}
	return reply
}

// extractCells serves one ExtractCells request. With Remove false the
// shares are copies (queries and ring snapshot, nothing changes here);
// with Remove true whole-cell shares leave the index and release their
// ring, while key splits keep the cell ring for the remaining keys —
// mirroring the in-process migrateShare/migrateSplit extraction.
// Liveness is judged on the coordinator's clock (coordNow), the same
// domain the entries' At stamps live in. A removing extraction that
// strips a top-k subscription's last live cell also releases its heap,
// and the resulting membership deltas ride back in the share.
func (w *Worker) extractCells(ex wire.ExtractCells) wire.CellShare {
	w.mu.Lock()
	defer w.mu.Unlock()
	share := wire.CellShare{Seq: ex.Seq, Epoch: w.stateEpoch}
	now := w.coordNow
	for _, spec := range ex.Cells {
		p := wire.CellPayload{Cell: spec.Cell}
		switch {
		case !ex.Remove && spec.Keys == nil:
			p.Queries = w.ix.QueriesInCell(spec.Cell)
			p.Ring = w.win.SnapshotCell(spec.Cell, now)
		case !ex.Remove:
			p.Queries = w.ix.QueriesInCellKeys(spec.Cell, spec.Keys)
			p.Ring = w.win.SnapshotCell(spec.Cell, now)
		case spec.Keys == nil:
			p.Queries = w.ix.ExtractCell(spec.Cell)
			// Subscriptions whose only live presence was this cell drop
			// their heaps before the ring is released (see the in-process
			// finishExtract), so the coordinator's board learns of the
			// departure in this round, not from a racing frame.
			for _, q := range p.Queries {
				if q != nil && q.IsTopK() && !w.ix.HasLive(q.ID) {
					share.Deltas = append(share.Deltas, w.win.RemoveSub(q.ID)...)
				}
			}
			var dropDs []window.Delta
			p.Ring, dropDs = w.win.DropCell(spec.Cell, now)
			share.Deltas = append(share.Deltas, dropDs...)
		default:
			p.Queries = w.ix.ExtractCellKeys(spec.Cell, spec.Keys)
			for _, q := range p.Queries {
				if q != nil && q.IsTopK() && !w.ix.HasLive(q.ID) {
					share.Deltas = append(share.Deltas, w.win.RemoveSub(q.ID)...)
				}
			}
			p.Ring = w.win.SnapshotCell(spec.Cell, now)
		}
		if ex.Subs {
			for _, q := range p.Queries {
				if q == nil || !q.IsTopK() {
					continue
				}
				if es := w.win.SubEntries(q.ID); len(es) > 0 {
					p.Subs = append(p.Subs, wire.SubEntries{ID: q.ID, Entries: es})
				}
			}
		}
		share.Cells = append(share.Cells, p)
	}
	return share
}

// installCells indexes the received cell shares and applies the
// reconciliation deletes (queries removed at the migration source
// between copy and routing flip). A payload with a negative Cell is a
// whole-query install (global repartition): the query is indexed by its
// own placement rather than into one named cell. Top-k subscriptions
// register in the window store, adopt the carried entries, and the
// membership deltas everything produced return in the ack.
func (w *Worker) installCells(ic wire.InstallCells) wire.InstallAck {
	w.mu.Lock()
	defer w.mu.Unlock()
	ack := wire.InstallAck{Seq: ic.Seq, Epoch: w.stateEpoch}
	now := w.coordNow
	for i := range ic.Cells {
		p := &ic.Cells[i]
		for _, q := range p.Queries {
			if q == nil {
				continue
			}
			if p.Cell < 0 {
				w.ix.Insert(q)
			} else {
				w.ix.InsertAt(p.Cell, q)
			}
			if q.IsTopK() {
				ack.Deltas = append(ack.Deltas, w.win.AddSub(q, now)...)
			}
		}
		if len(p.Ring) > 0 {
			ack.Deltas = append(ack.Deltas, w.win.AdoptCell(p.Cell, p.Ring, now)...)
		}
		for _, se := range p.Subs {
			ack.Deltas = append(ack.Deltas, w.win.AdoptEntries(se.ID, se.Entries, now)...)
		}
	}
	for _, id := range ic.Deletes {
		w.ix.Delete(id)
		ack.Deltas = append(ack.Deltas, w.win.RemoveSub(id)...)
	}
	return ack
}

// processOps applies one operation batch to the index and window store,
// appending the resulting match envelopes to out and the top-k window
// deltas to dout (the caller frames those toward the coordinator's
// board). The index lock is taken once per batch, mirroring the
// in-process worker bolt; concurrent data streams serialise here per
// batch. epoch is the session epoch the deltas were produced under, so
// the coordinator's board can fence stale replays.
func (w *Worker) processOps(ops []wire.OpEnv, out []wire.MatchEnv, dout []window.Delta) ([]wire.MatchEnv, []window.Delta, uint64) {
	var nObj, nIns, nDel int64
	w.mu.Lock()
	for i := range ops {
		env := &ops[i]
		// Track the coordinator's clock: T0 stamps are the coordinator's
		// submit times, so their running max is the same "now" an
		// in-process worker reads per batch.
		if env.T0.After(w.coordNow) {
			w.coordNow = env.T0
		}
		switch env.Op.Kind {
		case model.OpInsert:
			nIns++
			q := env.Op.Query
			if q == nil {
				continue
			}
			w.ix.Insert(q)
			if q.IsTopK() {
				dout = append(dout, w.win.AddSub(q, w.coordNow)...)
			}
		case model.OpDelete:
			nDel++
			if env.Op.Query != nil {
				w.ix.Delete(env.Op.Query.ID)
				dout = append(dout, w.win.RemoveSub(env.Op.Query.ID)...)
			}
		case model.OpObject:
			nObj++
			obj := env.Op.Obj
			if obj == nil {
				continue
			}
			e := window.Entry{
				MsgID: obj.ID,
				Terms: obj.Terms,
				Loc:   obj.Loc,
				At:    env.T0,
			}
			w.ix.Match(obj, func(q *model.Query) {
				if q.IsTopK() {
					dout = w.win.OfferInto(dout, q, e, w.coordNow)
					return
				}
				if env.Refill {
					// Window-rebuild replay: its boolean matches were
					// delivered before the coordinator's checkpoint covered
					// the op, and queries inserted since must not match an
					// object published before them.
					return
				}
				out = append(out, wire.MatchEnv{
					M: model.Match{
						QueryID:    q.ID,
						Subscriber: q.Subscriber,
						ObjectID:   obj.ID,
						Worker:     w.task,
					},
					T0: env.T0,
				})
			})
			if w.win.SubCount() > 0 {
				w.win.Observe(e)
			}
		}
	}
	epoch := w.stateEpoch
	w.mu.Unlock()
	w.done.Add(int64(len(ops)))
	w.emitted.Add(int64(len(out)))
	w.deltasN.Add(int64(len(dout)))
	if nObj > 0 {
		w.objects.Add(nObj)
	}
	if nIns > 0 {
		w.inserts.Add(nIns)
	}
	if nDel > 0 {
		w.deletes.Add(nDel)
	}
	return out, dout, epoch
}

// recvHello performs the receiving half of the handshake: the Hello
// frame, validated. The caller answers with a Welcome once it has
// negotiated the session shape (codec, streams) — and, for multi-stream
// sessions, registered the session, so a data connection racing the
// Welcome finds it.
func recvHello(conn *wire.Conn) (wire.Hello, error) {
	typ, payload, err := conn.RecvTimeout(wire.DefaultHandshakeTimeout)
	if err != nil {
		return wire.Hello{}, fmt.Errorf("node: awaiting hello: %w", err)
	}
	if typ != wire.TypeHello {
		return wire.Hello{}, fmt.Errorf("node: first frame has type %d, want hello", typ)
	}
	var hello wire.Hello
	if err := wire.DecodePayload(payload, &hello); err != nil {
		return wire.Hello{}, err
	}
	if err := wire.CheckHandshake(hello.Magic, hello.Version); err != nil {
		return wire.Hello{}, err
	}
	if hello.Role != wire.RoleCoordinator {
		return wire.Hello{}, fmt.Errorf("node: peer role %q, want %q", hello.Role, wire.RoleCoordinator)
	}
	return hello, nil
}

// ListenAndServeWorker is the one-call form used by cmd/psnode: listen
// on addr and serve a worker until ctx ends.
func ListenAndServeWorker(ctx context.Context, addr string, opts WorkerOptions) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	opts.Log.printf("worker: listening on %s", ln.Addr())
	return NewWorker(opts).Serve(ctx, ln)
}
