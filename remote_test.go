package ps2stream

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"testing"
	"time"

	"ps2stream/internal/node"
)

// startWorkerNode launches one psnode-style worker serve loop on
// loopback TCP and returns its address.
func startWorkerNode(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go node.NewWorker(node.WorkerOptions{}).Serve(ctx, ln)
	return ln.Addr().String()
}

// TestRemoteWorkersViaPublicAPI: an embedding process with
// Options.RemoteWorkers delivers matches produced across the wire
// through the ordinary OnMatch hook, and Flush covers the remote hop.
func TestRemoteWorkersViaPublicAPI(t *testing.T) {
	col := &collector{}
	sys, err := Open(Options{
		Region:        usRegion,
		Workers:       3, // task 0 remote, tasks 1-2 in-process
		Dispatchers:   1,
		RemoteWorkers: []string{startWorkerNode(t)},
		OnMatch:       col.add,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := sys.Subscribe(Subscription{
			ID:     uint64(i + 1),
			Query:  fmt.Sprintf("tag%d", i%4),
			Region: RegionAround(35+float64(i%8), -100+float64(i%20), 200, 200),
		}); err != nil {
			t.Fatal(err)
		}
	}
	sys.Flush()
	for i := 0; i < 200; i++ {
		sys.Publish(Message{
			ID:   uint64(1000 + i),
			Text: fmt.Sprintf("tag%d tag%d event", i%4, (i+1)%4),
			Lat:  35 + float64(i%8),
			Lon:  -100 + float64(i%20),
		})
	}
	sys.Flush()
	// Flush guarantees exactness: delivered must equal Stats().Matches,
	// and the set must be non-trivial.
	st := sys.Stats()
	if int64(col.len()) != st.Matches {
		t.Errorf("OnMatch saw %d, Stats.Matches %d — Flush returned early", col.len(), st.Matches)
	}
	if st.Matches == 0 {
		t.Error("no matches across the wire")
	}
	// Top-k subscriptions ride remote workers too: membership deltas
	// stream back over the wire and Flush settles the board.
	if err := sys.SubscribeTopK(Subscription{ID: 999, Query: "tag1", Region: usRegion}, 3, time.Minute); err != nil {
		t.Errorf("SubscribeTopK with RemoteWorkers: %v", err)
	}
	sys.Flush()
	sys.Publish(Message{ID: 9000, Text: "tag1 event", Lat: 36, Lon: -99})
	sys.Flush()
	if got := sys.TopKSet(999); len(got) == 0 {
		t.Error("top-k set empty after a matching publish across the wire")
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRemoteWorkersExactMatchSet: the same seeded workload must produce
// the byte-identical match set whether worker tasks run in-process or
// behind loopback TCP.
func TestRemoteWorkersExactMatchSet(t *testing.T) {
	type key struct{ sub, msg uint64 }
	run := func(remote bool) map[key]bool {
		col := &collector{}
		opts := Options{
			Region:      usRegion,
			Workers:     2,
			Dispatchers: 1,
			OnMatch:     col.add,
		}
		if remote {
			opts.RemoteWorkers = []string{startWorkerNode(t), startWorkerNode(t)}
		}
		sys, err := Open(opts)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(77))
		for i := 0; i < 50; i++ {
			if err := sys.Subscribe(Subscription{
				ID:         uint64(i + 1),
				Query:      fmt.Sprintf("kw%d AND kw%d", i%7, (i+3)%7),
				Region:     RegionAround(30+rng.Float64()*15, -120+rng.Float64()*50, 300, 300),
				Subscriber: uint64(i),
			}); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 600; i++ {
			sys.Publish(Message{
				ID:   uint64(5000 + i),
				Text: fmt.Sprintf("kw%d kw%d kw%d", i%7, (i+3)%7, (i+5)%7),
				Lat:  30 + rng.Float64()*15,
				Lon:  -120 + rng.Float64()*50,
			})
		}
		sys.Flush()
		if err := sys.Close(); err != nil {
			t.Fatal(err)
		}
		col.mu.Lock()
		defer col.mu.Unlock()
		out := make(map[key]bool, len(col.ms))
		for _, m := range col.ms {
			out[key{m.SubscriptionID, m.MessageID}] = true
		}
		return out
	}
	want := run(false)
	got := run(true)
	if len(want) == 0 {
		t.Fatal("vacuous: in-process run produced no matches")
	}
	if len(got) != len(want) {
		t.Errorf("remote run delivered %d distinct matches, in-process %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Errorf("match %v missing from the remote run", k)
		}
	}
	for k := range got {
		if !want[k] {
			t.Errorf("match %v extra in the remote run", k)
		}
	}
}

// TestRestoreBoundsMismatch: a snapshot taken over one region must be
// refused by a system monitoring another — its grid cell ids would not
// line up and the restored subscriptions would never match.
func TestRestoreBoundsMismatch(t *testing.T) {
	src, err := Open(Options{Region: usRegion, Workers: 2, Dispatchers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Subscribe(Subscription{ID: 1, Query: "coffee",
		Region: RegionAround(40, -100, 50, 50)}); err != nil {
		t.Fatal(err)
	}
	src.Flush()
	var snap bytes.Buffer
	if err := src.Checkpoint(&snap); err != nil {
		t.Fatal(err)
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}

	europe := NewRegion(-10, 36, 30, 60)
	dst, err := Open(Options{Region: europe, Workers: 2, Dispatchers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	n, err := dst.Restore(bytes.NewReader(snap.Bytes()))
	if !errors.Is(err, ErrBoundsMismatch) {
		t.Fatalf("Restore across regions: err = %v, want ErrBoundsMismatch", err)
	}
	if n != 0 {
		t.Errorf("Restore reported %d subscriptions despite refusing", n)
	}
	if got := dst.SubscriptionCount(); got != 0 {
		t.Errorf("%d subscriptions registered despite the bounds mismatch", got)
	}
}

// TestFlushExactUnderLoad: Stats().Matches read immediately after Flush
// must be exact. The pre-barrier Flush ended with a flat 20ms sleep and
// undercounted whenever mergers lagged; this loops enough rounds that a
// grace-sleep implementation fails reliably under -race or load.
func TestFlushExactUnderLoad(t *testing.T) {
	col := &collector{}
	sys, err := Open(Options{
		Region:      usRegion,
		Workers:     4,
		Dispatchers: 2,
		BatchSize:   16,
		OnMatch: func(m Match) {
			// A deliberately slow consumer: with the old sleep-based
			// Flush, delivery lag made the post-Flush read undercount.
			time.Sleep(20 * time.Microsecond)
			col.add(m)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const subs = 25
	for i := 0; i < subs; i++ {
		if err := sys.Subscribe(Subscription{
			ID:     uint64(i + 1),
			Query:  "flood",
			Region: RegionAround(40, -100, 2000, 2000),
		}); err != nil {
			t.Fatal(err)
		}
	}
	sys.Flush()
	var want int64
	for round := 0; round < 5; round++ {
		const msgs = 40
		for i := 0; i < msgs; i++ {
			sys.Publish(Message{
				ID:   uint64(round*msgs + i + 1),
				Text: "flood warning",
				Lat:  40, Lon: -100,
			})
		}
		want += subs * msgs
		sys.Flush()
		if got := sys.Stats().Matches; got != want {
			t.Fatalf("round %d: Stats().Matches = %d immediately after Flush, want %d", round, got, want)
		}
		if got := int64(col.len()); got != want {
			t.Fatalf("round %d: OnMatch delivered %d after Flush, want %d", round, got, want)
		}
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
}
