package ps2stream

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// scrape fetches one admin endpoint body.
func scrape(t *testing.T, addr, path string) string {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// promValue extracts the value of the first sample of a series from
// Prometheus text exposition.
func promValue(t *testing.T, body, series string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(series) + `(?:\{[^}]*\})? (\S+)$`)
	m := re.FindStringSubmatch(body)
	if m == nil {
		t.Fatalf("series %s not found in exposition", series)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("series %s: unparseable value %q", series, m[1])
	}
	return v
}

// TestAdminEndpointsEndToEnd runs a system with the admin server on,
// scrapes /metrics and /statsz mid-run, and asserts the core series are
// present and monotone across scrapes.
func TestAdminEndpointsEndToEnd(t *testing.T) {
	var c collector
	sys, err := Open(Options{
		Region:      usRegion,
		Workers:     2,
		Dispatchers: 1,
		AdminAddr:   "127.0.0.1:0",
		OnMatch:     c.add,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	addr := sys.AdminAddr()
	if addr == "" {
		t.Fatal("AdminAddr is empty with Options.AdminAddr set")
	}

	for i := 0; i < 20; i++ {
		if err := sys.Subscribe(Subscription{
			ID:     uint64(i + 1),
			Query:  fmt.Sprintf("term%d", i%7),
			Region: RegionAround(30+float64(i%15), -110+float64(i*3%40), 500, 500),
		}); err != nil {
			t.Fatal(err)
		}
	}
	publish := func(n, base int) {
		for i := 0; i < n; i++ {
			sys.Publish(Message{
				ID:   uint64(base + i),
				Text: fmt.Sprintf("term%d term%d", i%7, (i+3)%7),
				Lat:  30 + float64(i%15),
				Lon:  -110 + float64(i*5%40),
			})
		}
		sys.Flush()
	}
	publish(500, 10000)

	body := scrape(t, addr, "/metrics")
	for _, series := range []string{
		"ps2_ops_processed_total",
		"ps2_matches_delivered_total",
		`ps2_stage_seconds_bucket{stage="dispatch"`,
		`ps2_stage_seconds_bucket{stage="worker"`,
		`ps2_stage_seconds_bucket{stage="merge"`,
		`ps2_worker_window_load{worker="0"}`,
		`ps2_worker_ops_total{kind="object",worker="1"}`,
		"ps2_migrations_total",
		"ps2_tuple_latency_seconds_count",
		`ps2_queue_depth_batches{bolt="worker"}`,
	} {
		if !strings.Contains(body, series) {
			t.Errorf("/metrics is missing %s", series)
		}
	}
	processed := promValue(t, body, "ps2_ops_processed_total")
	matches := promValue(t, body, "ps2_matches_delivered_total")
	stageCount := promValue(t, body, "ps2_stage_seconds_count")
	if processed < 520 { // 20 subscriptions + 500 objects
		t.Errorf("ps2_ops_processed_total = %v, want >= 520", processed)
	}
	if matches <= 0 {
		t.Error("vacuous: no matches delivered before first scrape")
	}
	if stageCount <= 0 {
		t.Error("stage histograms observed no batches")
	}

	publish(500, 20000)
	body2 := scrape(t, addr, "/metrics")
	if p2 := promValue(t, body2, "ps2_ops_processed_total"); p2 < processed+500 {
		t.Errorf("ps2_ops_processed_total not monotone across scrapes: %v then %v", processed, p2)
	}
	if m2 := promValue(t, body2, "ps2_matches_delivered_total"); m2 < matches {
		t.Errorf("ps2_matches_delivered_total went backwards: %v then %v", matches, m2)
	}
	if s2 := promValue(t, body2, "ps2_stage_seconds_count"); s2 <= stageCount {
		t.Errorf("ps2_stage_seconds_count not monotone: %v then %v", stageCount, s2)
	}

	var statsz struct {
		Role   string `json:"role"`
		Series []struct {
			Name string `json:"name"`
		} `json:"series"`
	}
	if err := json.Unmarshal([]byte(scrape(t, addr, "/statsz")), &statsz); err != nil {
		t.Fatalf("/statsz is not JSON: %v", err)
	}
	if statsz.Role != "dispatcher" {
		t.Errorf("/statsz role = %q, want dispatcher", statsz.Role)
	}
	names := make(map[string]bool, len(statsz.Series))
	for _, s := range statsz.Series {
		names[s.Name] = true
	}
	for _, want := range []string{"ps2_ops_processed_total", "ps2_stage_seconds", "ps2_worker_window_load"} {
		if !names[want] {
			t.Errorf("/statsz is missing series %s", want)
		}
	}

	var health struct {
		Status string `json:"status"`
		Role   string `json:"role"`
	}
	if err := json.Unmarshal([]byte(scrape(t, addr, "/healthz")), &health); err != nil {
		t.Fatalf("/healthz is not JSON: %v", err)
	}
	if health.Status != "ok" || health.Role != "dispatcher" {
		t.Errorf("/healthz = %+v, want status ok role dispatcher", health)
	}
	scrape(t, addr, "/debug/pprof/cmdline") // pprof must be mounted
}

// TestStatsRacesPublishAndAdjust drives Stats, Publish and AdjustNow
// concurrently; the -race build turns any unsynchronised snapshot read
// into a failure.
func TestStatsRacesPublishAndAdjust(t *testing.T) {
	sys, err := Open(Options{
		Region:      usRegion,
		Workers:     4,
		Dispatchers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	for i := 0; i < 30; i++ {
		if err := sys.Subscribe(Subscription{
			ID:     uint64(i + 1),
			Query:  fmt.Sprintf("term%d", i%5),
			Region: RegionAround(32+float64(i%12), -100+float64(i%30), 600, 600),
		}); err != nil {
			t.Fatal(err)
		}
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < 4000; i++ {
			sys.Publish(Message{
				ID:   uint64(50000 + i),
				Text: fmt.Sprintf("term%d", i%5),
				Lat:  32 + float64(i%12),
				Lon:  -100 + float64(i%30),
			})
		}
		close(done)
	}()
	go func() {
		defer wg.Done()
		for {
			st := sys.Stats()
			if st.Processed < 0 {
				t.Error("impossible negative Processed")
				return
			}
			select {
			case <-done:
				return
			default:
			}
		}
	}()
	go func() {
		defer wg.Done()
		for {
			sys.AdjustNow()
			select {
			case <-done:
				return
			case <-time.After(time.Millisecond):
			}
		}
	}()
	wg.Wait()
	sys.Flush()
	if st := sys.Stats(); st.Processed < 4030 {
		t.Errorf("Processed = %d after flush, want >= 4030", st.Processed)
	}
}

// lockedBuf is a slog sink safe for the controller goroutine to write
// while the test reads after Close.
type lockedBuf struct {
	mu sync.Mutex
	b  strings.Builder
}

func (l *lockedBuf) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuf) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// TestAdjustDecisionTrace asserts the controller emits its structured
// decision trace through Options.Logger: every detector check is logged,
// and a triggered adjustment logs the trigger and its migrations.
func TestAdjustDecisionTrace(t *testing.T) {
	var buf lockedBuf
	logger := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	sys, err := Open(Options{
		Region:      usRegion,
		Workers:     2,
		Dispatchers: 1,
		Logger:      logger,
		Adjust: AdjustOptions{
			Auto:     true,
			Interval: 5 * time.Millisecond,
			Theta:    1.05,
			Cooldown: 10 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := sys.Subscribe(Subscription{
			ID:     uint64(i + 1),
			Query:  fmt.Sprintf("term%d", i%5),
			Region: RegionAround(31+float64(i%14), -105+float64(i%35), 500, 500),
		}); err != nil {
			t.Fatal(err)
		}
	}
	// A skewed stream (all objects in one corner) with paced publishing
	// so the controller sees live traffic across several intervals.
	deadline := time.Now().Add(2 * time.Second)
	for i := 0; time.Now().Before(deadline); i++ {
		sys.Publish(Message{
			ID:   uint64(90000 + i),
			Text: fmt.Sprintf("term%d", i%5),
			Lat:  32 + float64(i%3),
			Lon:  -104 + float64(i%3),
		})
		if i%64 == 0 {
			time.Sleep(2 * time.Millisecond)
		}
		if strings.Contains(buf.String(), "adjust check") {
			break
		}
	}
	sys.Flush()
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	trace := buf.String()
	if !strings.Contains(trace, "adjust check") {
		t.Fatalf("no detector verdicts in the trace:\n%.2000s", trace)
	}
	if !strings.Contains(trace, "decision=") || !strings.Contains(trace, "imbalance=") {
		t.Errorf("detector verdicts lack decision/imbalance attrs:\n%.2000s", trace)
	}
}
