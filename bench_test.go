package ps2stream

// Benchmark entry points: one per paper figure (delegating to the
// experiment harness in internal/bench), micro-benchmarks for the core
// data structures, and the ablation benches called out in DESIGN.md.
//
// The figure benches run the experiment at QuickScale per iteration and
// report the harness's key number via b.ReportMetric; run cmd/psbench for
// the full paper-style tables at DefaultScale.

import (
	"io"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ps2stream/internal/bench"
	"ps2stream/internal/geo"
	"ps2stream/internal/gi2"
	"ps2stream/internal/hybrid"
	"ps2stream/internal/load"
	"ps2stream/internal/migrate"
	"ps2stream/internal/model"
	"ps2stream/internal/partition"
	"ps2stream/internal/qindex"
	"ps2stream/internal/workload"
)

// runExperiment executes one harness experiment per iteration and reports
// the first numeric cell it finds (throughput, time, ...) as a metric.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	runner := bench.Experiments()[id]
	if runner == nil {
		b.Fatalf("unknown experiment %q", id)
	}
	sc := bench.QuickScale()
	var metric float64
	for i := 0; i < b.N; i++ {
		tables := runner(sc)
		for _, t := range tables {
			t.Fprint(io.Discard)
		}
		metric = firstNumeric(tables)
	}
	b.ReportMetric(metric, "result")
}

func firstNumeric(tables []bench.Table) float64 {
	for _, t := range tables {
		for _, r := range t.Rows {
			for _, c := range r {
				v := strings.TrimSuffix(strings.TrimSuffix(c, "ms"), "%")
				if f, err := strconv.ParseFloat(v, 64); err == nil {
					return f
				}
			}
		}
	}
	return 0
}

func BenchmarkFig06TextQ1(b *testing.B)           { runExperiment(b, "fig6a") }
func BenchmarkFig06TextQ2(b *testing.B)           { runExperiment(b, "fig6b") }
func BenchmarkFig06SpaceQ1(b *testing.B)          { runExperiment(b, "fig6c") }
func BenchmarkFig06SpaceQ2(b *testing.B)          { runExperiment(b, "fig6d") }
func BenchmarkFig07Throughput(b *testing.B)       { runExperiment(b, "fig7") }
func BenchmarkFig08Latency(b *testing.B)          { runExperiment(b, "fig8") }
func BenchmarkFig09DispatcherMemory(b *testing.B) { runExperiment(b, "fig9") }
func BenchmarkFig10WorkerMemory(b *testing.B)     { runExperiment(b, "fig10") }
func BenchmarkFig11Scalability(b *testing.B)      { runExperiment(b, "fig11") }
func BenchmarkFig12SelectionTime(b *testing.B)    { runExperiment(b, "fig12a") }
func BenchmarkFig12MigrationCost(b *testing.B)    { runExperiment(b, "fig12b") }
func BenchmarkFig12LatencyBuckets(b *testing.B)   { runExperiment(b, "fig12c") }
func BenchmarkFig13SelectionScaling(b *testing.B) { runExperiment(b, "fig13") }
func BenchmarkFig14MigrationScaling(b *testing.B) { runExperiment(b, "fig14") }
func BenchmarkFig15LatencyScaling(b *testing.B)   { runExperiment(b, "fig15") }
func BenchmarkFig16AdjustEffect(b *testing.B)     { runExperiment(b, "fig16") }

// BenchmarkAblationWorkerIndexTopology runs the §IV-D worker-index
// ablation through the full topology (see BenchmarkAblationWorkerIndex
// for the per-operation micro view).
func BenchmarkAblationWorkerIndexTopology(b *testing.B) { runExperiment(b, "ablidx") }

// BenchmarkAblationLatencyVsRate runs the saturation sweep behind
// Figure 8's "moderate input speed" setting.
func BenchmarkAblationLatencyVsRate(b *testing.B) { runExperiment(b, "ablrate") }

// --- Micro-benchmarks -------------------------------------------------

func microSample(n, q int) *partition.Sample {
	return workload.Sample(workload.TweetsUS(), workload.Q1, n, q, 99)
}

// BenchmarkGI2Match measures worker-side object matching against a loaded
// index (the c1 term of Definition 1).
func BenchmarkGI2Match(b *testing.B) {
	s := microSample(5000, 2000)
	ix := gi2.New(s.Bounds, 64, s.Stats)
	for _, q := range s.Queries {
		ix.Insert(q)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Match(s.Objects[i%len(s.Objects)], func(*model.Query) {})
	}
}

// BenchmarkGI2Insert measures query registration cost (the c3 term).
// Deletion of the same id keeps the index from growing without bound, so
// steady-state insert cost is measured.
func BenchmarkGI2Insert(b *testing.B) {
	s := microSample(2000, 1)
	qg := workload.NewQueryGenerator(workload.TweetsUS(), workload.Q1, 7)
	queries := make([]*model.Query, 4096)
	for i := range queries {
		queries[i] = qg.Query()
	}
	ix := gi2.New(s.Bounds, 64, s.Stats)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		ix.Insert(q)
		if i%len(queries) == len(queries)-1 {
			b.StopTimer()
			for _, d := range queries {
				ix.Delete(d.ID)
			}
			ix.Purge()
			b.StartTimer()
		}
	}
}

// BenchmarkGridTRouteObject measures dispatcher-side object routing.
func BenchmarkGridTRouteObject(b *testing.B) {
	s := microSample(8000, 2000)
	a, err := hybrid.Builder{}.Build(s, 8)
	if err != nil {
		b.Fatal(err)
	}
	for _, q := range s.Queries {
		a.RouteQuery(q, true)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.RouteObject(s.Objects[i%len(s.Objects)])
	}
}

// BenchmarkGridTRouteQuery measures dispatcher-side query routing.
func BenchmarkGridTRouteQuery(b *testing.B) {
	s := microSample(8000, 2000)
	a, err := hybrid.Builder{}.Build(s, 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.RouteQuery(s.Queries[i%len(s.Queries)], i%2 == 0)
	}
}

// BenchmarkExprMatch measures boolean expression evaluation.
func BenchmarkExprMatch(b *testing.B) {
	e := model.Expr{Conj: [][]string{{"alpha", "beta"}, {"gamma"}}}
	terms := []string{"delta", "beta", "alpha", "epsilon", "zeta"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.MatchesSlice(terms)
	}
}

// BenchmarkSelection compares the four cell-selection algorithms on one
// realistic inventory (the per-op cost behind Figure 12(a)).
func BenchmarkSelection(b *testing.B) {
	cells := make([]migrate.Cell, 1000)
	for i := range cells {
		cells[i] = migrate.Cell{
			ID:   i,
			Load: float64(1 + (i*7919)%100),
			Size: int64(64 + (i*104729)%4096),
		}
	}
	var total float64
	for _, c := range cells {
		total += c.Load
	}
	tau := total * 0.25
	for _, alg := range migrate.Algorithms() {
		b.Run(string(alg), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				migrate.Select(alg, cells, tau, nil)
			}
		})
	}
}

// BenchmarkHybridBuild measures Algorithm 1 end to end.
func BenchmarkHybridBuild(b *testing.B) {
	s := microSample(8000, 1600)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (hybrid.Builder{}).Build(s, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §5) ------------------------------------------

// routedTuples counts total routed tuples for an assignment over a fresh
// op stream: the duplication-sensitive part of the total workload.
func routedTuples(a partition.Assignment, spec workload.DatasetSpec, kind workload.QueryKind, n int) int {
	st := workload.NewStream(spec, kind, workload.StreamConfig{Mu: 2000, Seed: 5})
	for _, op := range st.Prewarm(2000) {
		a.RouteQuery(op.Query, true)
	}
	total := 0
	for i := 0; i < n; i++ {
		op := st.Next()
		switch op.Kind {
		case model.OpObject:
			total += len(a.RouteObject(op.Obj))
		case model.OpInsert:
			total += len(a.RouteQuery(op.Query, true))
		case model.OpDelete:
			total += len(a.RouteQuery(op.Query, false))
		}
	}
	return total
}

// BenchmarkAblationHybridDelta sweeps the δ similarity threshold of
// Algorithm 1 and reports total routed tuples (lower = less duplication).
func BenchmarkAblationHybridDelta(b *testing.B) {
	s := microSample(8000, 1600)
	for _, delta := range []float64{0.2, 0.5, 0.8} {
		cfg := hybrid.DefaultConfig()
		cfg.Delta = delta
		b.Run("delta="+strconv.FormatFloat(delta, 'f', 1, 64), func(b *testing.B) {
			var routed int
			for i := 0; i < b.N; i++ {
				a, err := hybrid.Builder{Config: cfg}.Build(s, 8)
				if err != nil {
					b.Fatal(err)
				}
				routed = routedTuples(a, workload.TweetsUS(), workload.Q3, 5000)
			}
			b.ReportMetric(float64(routed), "routed_tuples")
		})
	}
}

// BenchmarkAblationGI2Granularity sweeps the worker grid resolution; the
// paper fixes 2^6 empirically.
func BenchmarkAblationGI2Granularity(b *testing.B) {
	s := microSample(5000, 2000)
	for _, gran := range []int{16, 64, 128} {
		b.Run("g="+strconv.Itoa(gran), func(b *testing.B) {
			ix := gi2.New(s.Bounds, gran, s.Stats)
			for _, q := range s.Queries {
				ix.Insert(q)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ix.Match(s.Objects[i%len(s.Objects)], func(*model.Query) {})
			}
		})
	}
}

// BenchmarkAblationLazyVsEagerDeletion compares the paper's lazy deletion
// against eager purging under a delete-heavy stream.
func BenchmarkAblationLazyVsEagerDeletion(b *testing.B) {
	s := microSample(2000, 1)
	qg := workload.NewQueryGenerator(workload.TweetsUS(), workload.Q1, 8)
	queries := make([]*model.Query, 2048)
	for i := range queries {
		queries[i] = qg.Query()
	}
	obj := s.Objects[0]
	run := func(b *testing.B, eager bool) {
		ix := gi2.New(s.Bounds, 64, s.Stats)
		for _, q := range queries {
			ix.Insert(q)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q := queries[i%len(queries)]
			ix.Delete(q.ID)
			if eager {
				ix.Purge()
			}
			ix.Match(obj, func(*model.Query) {})
			ix.Insert(q)
		}
	}
	b.Run("lazy", func(b *testing.B) { run(b, false) })
	b.Run("eager", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationDispatcherIndex compares gridt cell lookup against the
// O(log m) kdt-tree walk it replaces (here: kd-tree assignment without the
// grid raster is approximated by the R-tree baseline's search path).
func BenchmarkAblationDispatcherIndex(b *testing.B) {
	s := microSample(8000, 1600)
	builders := map[string]partition.Builder{
		"gridt(hybrid)": hybrid.Builder{},
		"grid":          partition.GridBuilder{},
		"kdtree+grid":   partition.KDTreeBuilder{},
	}
	for name, bd := range builders {
		a, err := bd.Build(s, 8)
		if err != nil {
			b.Fatal(err)
		}
		for _, q := range s.Queries {
			a.RouteQuery(q, true)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a.RouteObject(s.Objects[i%len(s.Objects)])
			}
		})
	}
}

// BenchmarkAblationWorkerIndex compares GI2 against the alternative query
// indexes on the worker's two hot operations — the design choice of §IV-D
// ("We choose GI2 due to its efficiency in construction and maintaining",
// "our system can be extended to adopt other index structures").
func BenchmarkAblationWorkerIndex(b *testing.B) {
	s := microSample(5000, 2000)
	build := map[string]func() qindex.Index{
		"gi2":    func() qindex.Index { return gi2.New(s.Bounds, 64, s.Stats) },
		"rtree":  func() qindex.Index { return qindex.NewRTree(32) },
		"iqtree": func() qindex.Index { return qindex.NewIQTree(s.Bounds, s.Stats, 0, 0) },
		"aptree": func() qindex.Index { return qindex.NewAPTree(s.Bounds, s.Stats, 0, 0, 0) },
	}
	for name, mk := range build {
		b.Run("insert/"+name, func(b *testing.B) {
			ix := mk()
			for i := 0; i < b.N; i++ {
				ix.Insert(s.Queries[i%len(s.Queries)])
				if (i+1)%len(s.Queries) == 0 {
					b.StopTimer()
					ix = mk()
					b.StartTimer()
				}
			}
		})
		b.Run("match/"+name, func(b *testing.B) {
			ix := mk()
			for _, q := range s.Queries {
				ix.Insert(q)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ix.Match(s.Objects[i%len(s.Objects)], func(*model.Query) {})
			}
		})
	}
}

// BenchmarkEndToEnd measures full-topology tuple throughput via the public
// API (sanity ceiling for the figure benches).
func BenchmarkEndToEnd(b *testing.B) {
	og := workload.NewGenerator(workload.TweetsUS(), 3)
	sys, err := Open(Options{
		Region:  NewRegion(-125, 24, -66, 49),
		Workers: 4, Dispatchers: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	sub := Subscription{ID: 1, Query: "us00000", Region: RegionAround(37, -95, 2000, 2000)}
	if err := sys.Subscribe(sub); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := og.Object()
		sys.Publish(Message{ID: o.ID, Text: strings.Join(o.Terms, " "), Lat: o.Loc.Y, Lon: o.Loc.X})
	}
	b.StopTimer()
	sys.Flush()
}

// BenchmarkTopKPublish measures publish throughput against a standing
// population of sliding-window top-k subscriptions at k ∈ {1, 10, 50}
// (the SubscribeTopK hot path: match → offer → heap → global reconcile).
// cmd/psbench -exp topk records the paper-style table; BENCH_topk.json
// holds the committed baseline.
func BenchmarkTopKPublish(b *testing.B) {
	for _, k := range []int{1, 10, 50} {
		b.Run("k="+strconv.Itoa(k), func(b *testing.B) {
			og := workload.NewGenerator(workload.TweetsUS(), 3)
			qg := workload.NewQueryGenerator(workload.TweetsUS(), workload.Q1, 7)
			var updates atomic.Int64
			sys, err := Open(Options{
				Region:  NewRegion(-125, 24, -66, 49),
				Workers: 4, Dispatchers: 2,
				OnTopK: func(TopKUpdate) { updates.Add(1) },
			})
			if err != nil {
				b.Fatal(err)
			}
			defer sys.Close()
			for i := 0; i < 200; i++ {
				q := qg.Query()
				err := sys.SubscribeTopK(Subscription{
					ID:         q.ID,
					Query:      q.Expr.String(),
					Region:     Region{MinLat: q.Region.Min.Y, MinLon: q.Region.Min.X, MaxLat: q.Region.Max.Y, MaxLon: q.Region.Max.X},
					Subscriber: q.Subscriber,
				}, k, 30*time.Second)
				if err != nil {
					b.Fatal(err)
				}
			}
			sys.Flush()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				o := og.Object()
				sys.Publish(Message{ID: o.ID, Text: strings.Join(o.Terms, " "), Lat: o.Loc.Y, Lon: o.Loc.X})
			}
			b.StopTimer()
			sys.Flush()
			b.ReportMetric(float64(updates.Load()), "topk_updates")
		})
	}
}

// Guard: geo must stay allocation-free on the hot path.
func BenchmarkRectContains(b *testing.B) {
	r := geo.NewRect(0, 0, 10, 10)
	p := geo.Point{X: 5, Y: 5}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Contains(p)
	}
}

// Guard: Definition 1 evaluation is trivially cheap.
func BenchmarkLoadWorker(b *testing.B) {
	c := load.DefaultCosts
	for i := 0; i < b.N; i++ {
		c.Worker(float64(i), float64(i/5), float64(i/5))
	}
}

// BenchmarkPublishBatched measures the publish hot path at several
// transfer batch sizes through the public API: batch=1 is the unbatched
// baseline (one channel send, one lock acquisition per message), batch=64
// is the Options.BatchSize default. Messages are pre-generated so the
// timed region covers only Publish → dispatch → match → merge.
// cmd/psbench -exp batch records the paper-style table; BENCH_batch.json
// holds the committed baseline.
func BenchmarkPublishBatched(b *testing.B) {
	for _, bs := range []int{1, 8, 64, 256} {
		b.Run("batch="+strconv.Itoa(bs), func(b *testing.B) {
			og := workload.NewGenerator(workload.TweetsUS(), 3)
			qg := workload.NewQueryGenerator(workload.TweetsUS(), workload.Q1, 7)
			sys, err := Open(Options{
				Region:  NewRegion(-125, 24, -66, 49),
				Workers: 4, Dispatchers: 2,
				BatchSize: bs,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer sys.Close()
			for i := 0; i < 500; i++ {
				q := qg.Query()
				err := sys.Subscribe(Subscription{
					ID:         q.ID,
					Query:      q.Expr.String(),
					Region:     Region{MinLat: q.Region.Min.Y, MinLon: q.Region.Min.X, MaxLat: q.Region.Max.Y, MaxLon: q.Region.Max.X},
					Subscriber: q.Subscriber,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			sys.Flush()
			msgs := make([]Message, b.N)
			for i := range msgs {
				o := og.Object()
				msgs[i] = Message{ID: o.ID, Text: strings.Join(o.Terms, " "), Lat: o.Loc.Y, Lon: o.Loc.X}
			}
			b.ResetTimer()
			for i := range msgs {
				sys.Publish(msgs[i])
			}
			sys.Flush()
			b.StopTimer()
		})
	}
}
