package ps2stream

import (
	"sort"
	"sync"
	"testing"
	"time"
)

// collectTopK gathers TopKUpdate deliveries thread-safely.
type collectTopK struct {
	mu  sync.Mutex
	ups []TopKUpdate
}

func (c *collectTopK) add(u TopKUpdate) {
	c.mu.Lock()
	c.ups = append(c.ups, u)
	c.mu.Unlock()
}

// set replays the update stream into the membership it implies.
func (c *collectTopK) set(sub uint64) []uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	cur := make(map[uint64]bool)
	for _, u := range c.ups {
		if u.SubscriptionID != sub {
			continue
		}
		if u.Event == TopKEntered {
			cur[u.MessageID] = true
		} else {
			delete(cur, u.MessageID)
		}
	}
	out := make([]uint64, 0, len(cur))
	for id := range cur {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestSubscribeTopKDeliversRankedWindow(t *testing.T) {
	var mu sync.Mutex
	now := time.Date(2026, 4, 1, 8, 0, 0, 0, time.UTC)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}

	col := &collectTopK{}
	sys, err := Open(Options{
		Region:  NewRegion(-125, 24, -66, 49),
		Workers: 4, Dispatchers: 1,
		OnTopK: col.add,
		Now:    clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	if err := sys.SubscribeTopK(Subscription{
		ID:         1,
		Query:      "pizza OR pasta",
		Region:     RegionAround(40.7, -73.95, 200, 200),
		Subscriber: 42,
	}, 2, time.Minute); err != nil {
		t.Fatal(err)
	}
	sys.Flush()

	// Three matching messages: with k=2 the third (least relevant —
	// farthest and only partially matching) must displace nothing.
	msgs := []Message{
		{ID: 10, Text: "pizza pasta night", Lat: 40.70, Lon: -73.95},
		{ID: 11, Text: "fresh pizza slices", Lat: 40.71, Lon: -73.94},
		{ID: 12, Text: "pasta", Lat: 41.2, Lon: -74.5},
	}
	for _, m := range msgs {
		advance(time.Second)
		sys.Publish(m)
	}
	sys.Flush()
	sys.AdvanceTopK()

	got := sys.TopKSet(1)
	if len(got) != 2 {
		t.Fatalf("TopKSet is %v, want 2 entries", got)
	}
	if implied := col.set(1); !equalU64(implied, got) {
		t.Fatalf("update stream implies %v, TopKSet says %v", implied, got)
	}
	for _, u := range col.ups {
		if u.Subscriber != 42 {
			t.Fatalf("update carries subscriber %d, want 42", u.Subscriber)
		}
		if u.Score <= 0 || u.Score > 1 {
			t.Fatalf("update score %v outside (0, 1]", u.Score)
		}
	}

	// Window expiry empties the subscription.
	advance(2 * time.Minute)
	sys.AdvanceTopK()
	if got := sys.TopKSet(1); len(got) != 0 {
		t.Fatalf("entries survived the window: %v", got)
	}
	if implied := col.set(1); len(implied) != 0 {
		t.Fatalf("update stream leaves residue: %v", implied)
	}
}

func TestSubscribeTopKValidation(t *testing.T) {
	sys, err := Open(Options{Region: NewRegion(0, 0, 10, 10)})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sub := Subscription{ID: 1, Query: "a", Region: NewRegion(1, 1, 2, 2)}
	if err := sys.SubscribeTopK(sub, 0, time.Minute); err == nil {
		t.Error("k=0 accepted")
	}
	if err := sys.SubscribeTopK(sub, 3, 0); err == nil {
		t.Error("zero window accepted")
	}
	if err := sys.SubscribeTopK(Subscription{ID: 2, Query: "", Region: sub.Region}, 3, time.Minute); err == nil {
		t.Error("empty expression accepted")
	}
	if err := sys.SubscribeTopK(sub, 3, time.Minute); err != nil {
		t.Errorf("valid top-k subscription rejected: %v", err)
	}
}

func TestUnsubscribeTopKStopsTracking(t *testing.T) {
	col := &collectTopK{}
	sys, err := Open(Options{
		Region: NewRegion(0, 0, 10, 10),
		OnTopK: col.add,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sub := Subscription{ID: 5, Query: "alert", Region: NewRegion(0, 0, 10, 10)}
	if err := sys.SubscribeTopK(sub, 3, time.Minute); err != nil {
		t.Fatal(err)
	}
	sys.Flush()
	sys.Publish(Message{ID: 1, Text: "alert one", Lat: 5, Lon: 5})
	sys.Flush()
	if got := sys.TopKSet(5); len(got) != 1 {
		t.Fatalf("TopKSet %v, want one entry", got)
	}
	if err := sys.Unsubscribe(sub); err != nil {
		t.Fatal(err)
	}
	sys.Flush()
	if got := sys.TopKSet(5); len(got) != 0 {
		t.Fatalf("TopKSet %v after unsubscribe, want empty", got)
	}
	if implied := col.set(5); len(implied) != 0 {
		t.Fatalf("update stream leaves residue after unsubscribe: %v", implied)
	}
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
