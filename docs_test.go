package ps2stream

// Documentation hygiene checks, run by the CI docs job: every relative
// link in the repository's markdown files must point at a file or
// directory that exists, so the paper-to-code map and wire-format docs
// cannot silently rot as the tree moves underneath them.

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links [text](target); images share the
// syntax and are checked the same way.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocRelativeLinks fails on any relative markdown link whose target
// does not exist on disk.
func TestDocRelativeLinks(t *testing.T) {
	var files []string
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == ".claude" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(strings.ToLower(d.Name()), ".md") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no markdown files found; the link check is vacuous")
	}
	checked := 0
	for _, f := range files {
		body, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(body), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") ||
				strings.HasPrefix(target, "#") {
				continue // external links and intra-document anchors
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(f), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken relative link %q (resolved %s)", f, m[1], resolved)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Log("no relative links found")
	}
}
