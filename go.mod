module ps2stream

go 1.23
