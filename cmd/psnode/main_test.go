package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"ps2stream"
)

// buildPsnode compiles the real psnode binary once per test run.
var buildOnce sync.Once
var psnodeBin string
var buildErr error

func psnode(t *testing.T) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not in PATH")
	}
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "psnode-test")
		if err != nil {
			buildErr = err
			return
		}
		psnodeBin = filepath.Join(dir, "psnode")
		out, err := exec.Command("go", "build", "-o", psnodeBin, ".").CombinedOutput()
		if err != nil {
			buildErr = fmt.Errorf("building psnode: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return psnodeBin
}

// freePort reserves a loopback port long enough to hand it to a child
// process.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// startNode launches one psnode role as a real OS process.
func startNode(t *testing.T, args ...string) *exec.Cmd {
	cmd, _ := startNodeLogged(t, args...)
	return cmd
}

// startNodeLogged additionally exposes the node's combined output, so
// tests can assert on reported statistics (reads are only safe after
// the process exits).
func startNodeLogged(t *testing.T, args ...string) (*exec.Cmd, *bytes.Buffer) {
	t.Helper()
	cmd := exec.Command(psnode(t), args...)
	var logs bytes.Buffer
	cmd.Stdout = &logs
	cmd.Stderr = &logs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
		if t.Failed() {
			t.Logf("psnode %v logs:\n%s", args, logs.String())
		}
	})
	return cmd, &logs
}

// waitNode waits for a -once node to exit on its own.
func waitNode(t *testing.T, cmd *exec.Cmd) {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("psnode exited with %v", err)
		}
	case <-time.After(60 * time.Second):
		cmd.Process.Kill()
		t.Fatal("psnode did not exit within 60s")
	}
}

// dumpMatches renders a match set in the -out file format (sorted,
// deduplicated) so in-memory and on-disk sets compare byte for byte.
func dumpMatches(ms []ps2stream.Match) string {
	type key struct{ q, o, s uint64 }
	seen := make(map[key]struct{}, len(ms))
	for _, m := range ms {
		seen[key{m.SubscriptionID, m.MessageID, m.Subscriber}] = struct{}{}
	}
	keys := make([]key, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].q != keys[j].q {
			return keys[i].q < keys[j].q
		}
		return keys[i].o < keys[j].o
	})
	var sb bytes.Buffer
	for _, k := range keys {
		fmt.Fprintf(&sb, "%d %d %d\n", k.q, k.o, k.s)
	}
	return sb.String()
}

// runSeededWorkload drives a deterministic pub/sub workload through a
// System and returns the delivered match set in canonical form.
func runSeededWorkload(t *testing.T, remote []string) string {
	t.Helper()
	var mu sync.Mutex
	var ms []ps2stream.Match
	sys, err := ps2stream.Open(ps2stream.Options{
		Region:        ps2stream.NewRegion(-125, 24, -66, 49),
		Workers:       2,
		Dispatchers:   1,
		RemoteWorkers: remote,
		OnMatch: func(m ps2stream.Match) {
			mu.Lock()
			ms = append(ms, m)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if err := sys.Subscribe(ps2stream.Subscription{
			ID:         uint64(i + 1),
			Query:      fmt.Sprintf("term%d OR term%d", i%9, (i+4)%9),
			Region:     ps2stream.RegionAround(28+float64(i%17), -118+float64(i*7%46), 400, 400),
			Subscriber: uint64(i % 5),
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 800; i++ {
		sys.Publish(ps2stream.Message{
			ID:   uint64(10000 + i),
			Text: fmt.Sprintf("term%d term%d filler", i%9, (i+2)%9),
			Lat:  28 + float64(i%17),
			Lon:  -118 + float64(i*5%46),
		})
	}
	sys.Flush()
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	return dumpMatches(ms)
}

// TestTwoProcessLoopbackMatchesOracle is the acceptance check for the
// wire deployment: a psnode worker OS process plus this embedding
// process must produce the byte-identical match set of the equivalent
// in-process run on the same seeded workload.
func TestTwoProcessLoopbackMatchesOracle(t *testing.T) {
	addr := freePort(t)
	startNode(t, "-role", "worker", "-listen", addr)
	got := runSeededWorkload(t, []string{addr})
	want := runSeededWorkload(t, nil)
	if want == "" {
		t.Fatal("vacuous: oracle run delivered no matches")
	}
	if got != want {
		t.Errorf("two-process match set differs from the in-process oracle:\nremote: %d bytes\noracle: %d bytes",
			len(got), len(want))
	}
}

// TestPsnodeClusterAdjustHotspotShift launches a 2-worker loopback
// cluster with the adaptive controller enabled and drives hotspot-
// shifting object traffic (-hotspot-shift-every): cells must migrate
// between the worker OS processes over the wire, and the delivered
// match set must still be byte-identical to the static in-process
// oracle on the same seeded workload. CI runs this in the cluster job.
func TestPsnodeClusterAdjustHotspotShift(t *testing.T) {
	oracleOut := filepath.Join(t.TempDir(), "oracle.matches")
	workloadArgs := []string{"-mu", "500", "-ops", "6000", "-seed", "2017", "-objects-only",
		"-hotspot", "0", "-hotspot-bias", "0.85", "-hotspot-shift-every", "2000"}

	oracle := startNode(t, append([]string{"-role", "dispatcher", "-oracle", "-out", oracleOut}, workloadArgs...)...)
	waitNode(t, oracle)
	want, err := os.ReadFile(oracleOut)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("vacuous: oracle run delivered no matches")
	}

	// The controller migrates in the common case but a short CI run can
	// miss the window; retry the vacuous outcome a bounded number of
	// times. Match-set equality is asserted on every attempt.
	var migrated bool
	for attempt := 0; attempt < 3 && !migrated; attempt++ {
		w1, w2 := freePort(t), freePort(t)
		clusterOut := filepath.Join(t.TempDir(), fmt.Sprintf("cluster%d.matches", attempt))
		workers := []*exec.Cmd{
			startNode(t, "-role", "worker", "-listen", w1, "-once"),
			startNode(t, "-role", "worker", "-listen", w2, "-once"),
		}
		dispatcher, logs := startNodeLogged(t, append([]string{"-role", "dispatcher",
			"-workers", w1 + "," + w2, "-adjust", "-out", clusterOut}, workloadArgs...)...)
		waitNode(t, dispatcher)
		for _, w := range workers {
			waitNode(t, w)
		}
		got, err := os.ReadFile(clusterOut)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("attempt %d: adjusting cluster match set (%d bytes) differs from static oracle (%d bytes)",
				attempt, len(got), len(want))
		}
		m := regexp.MustCompile(`adjust migrations=(\d+)`).FindStringSubmatch(logs.String())
		if m == nil {
			t.Fatalf("dispatcher log carries no adjust summary:\n%s", logs.String())
		}
		migrated = m[1] != "0"
	}
	if !migrated {
		t.Fatal("no cells migrated across the wire in any attempt; the adjusting-cluster check is vacuous")
	}
}

// TestPsnodeCluster launches a full 1-dispatcher / 2-worker / 1-merger
// cluster — four OS processes — publishes a seeded workload, and gates
// on match-set equality against the psnode oracle mode. CI runs this as
// the loopback-cluster job.
func TestPsnodeCluster(t *testing.T) {
	w1, w2, mg := freePort(t), freePort(t), freePort(t)
	clusterOut := filepath.Join(t.TempDir(), "cluster.matches")
	oracleOut := filepath.Join(t.TempDir(), "oracle.matches")

	workers := []*exec.Cmd{
		startNode(t, "-role", "worker", "-listen", w1, "-once"),
		startNode(t, "-role", "worker", "-listen", w2, "-once"),
	}
	merger := startNode(t, "-role", "merger", "-listen", mg, "-once", "-out", clusterOut)
	dispatcher := startNode(t, "-role", "dispatcher",
		"-workers", w1+","+w2, "-mergers", mg,
		"-mu", "500", "-ops", "4000", "-seed", "2017")
	waitNode(t, dispatcher)
	for _, w := range workers {
		waitNode(t, w)
	}
	waitNode(t, merger)

	oracle := startNode(t, "-role", "dispatcher", "-oracle",
		"-mu", "500", "-ops", "4000", "-seed", "2017", "-out", oracleOut)
	waitNode(t, oracle)

	got, err := os.ReadFile(clusterOut)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(oracleOut)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("vacuous: oracle run delivered no matches")
	}
	if !bytes.Equal(got, want) {
		t.Errorf("cluster match set (%d bytes) differs from oracle (%d bytes)", len(got), len(want))
	}
}

// TestPsnodeClusterTopKRepartition is the process-level acceptance
// check for distributed top-k and wire repartition: a 4-process cluster
// (dispatcher, two workers, a merger) runs a top-k mix alongside the
// standing subscriptions, a GlobalRepartition re-places every cell over
// the wire mid-stream — window entries and board contributions ride the
// migration frames — and both the delivered match set and the final
// reconciled top-k sets must be byte-identical to the in-process oracle
// run, which never repartitions. CI runs this in the cluster job.
func TestPsnodeClusterTopKRepartition(t *testing.T) {
	w1, w2, mg := freePort(t), freePort(t), freePort(t)
	clusterOut := filepath.Join(t.TempDir(), "cluster.matches")
	clusterTopK := filepath.Join(t.TempDir(), "cluster.topk")
	oracleOut := filepath.Join(t.TempDir(), "oracle.matches")
	oracleTopK := filepath.Join(t.TempDir(), "oracle.topk")
	// -objects-only keeps the measured stream to objects (the standing
	// and top-k subscriptions are prewarmed behind drain barriers), so
	// the repartition's cell movement cannot race a query registration.
	workloadArgs := []string{"-mu", "400", "-ops", "6000", "-seed", "2017", "-objects-only",
		"-topk", "8", "-topk-k", "5", "-topk-window", "24h"}

	oracle := startNode(t, append([]string{"-role", "dispatcher", "-oracle",
		"-out", oracleOut, "-topk-out", oracleTopK}, workloadArgs...)...)
	waitNode(t, oracle)
	want, err := os.ReadFile(oracleOut)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("vacuous: oracle run delivered no matches")
	}
	wantTopK, err := os.ReadFile(oracleTopK)
	if err != nil {
		t.Fatal(err)
	}
	if !regexp.MustCompile(`: \d`).Match(wantTopK) {
		t.Fatalf("vacuous: oracle top-k sets rank nothing:\n%s", wantTopK)
	}

	workers := []*exec.Cmd{
		startNode(t, "-role", "worker", "-listen", w1, "-once"),
		startNode(t, "-role", "worker", "-listen", w2, "-once"),
	}
	merger := startNode(t, "-role", "merger", "-listen", mg, "-once", "-out", clusterOut)
	dispatcher, logs := startNodeLogged(t, append([]string{"-role", "dispatcher",
		"-workers", w1 + "," + w2, "-mergers", mg,
		"-repartition-at", "3000", "-topk-out", clusterTopK}, workloadArgs...)...)
	waitNode(t, dispatcher)
	for _, w := range workers {
		waitNode(t, w)
	}
	waitNode(t, merger)

	got, err := os.ReadFile(clusterOut)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("cluster match set (%d bytes) differs from oracle (%d bytes)", len(got), len(want))
	}
	gotTopK, err := os.ReadFile(clusterTopK)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotTopK, wantTopK) {
		t.Errorf("cluster top-k sets differ from oracle:\ncluster:\n%soracle:\n%s", gotTopK, wantTopK)
	}
	// Non-vacuousness: the repartition must actually have run mid-stream.
	text := logs.String()
	for _, marker := range []string{"global repartition begun after", "global repartition finished"} {
		if !strings.Contains(text, marker) {
			t.Errorf("dispatcher log is missing %q; the run did not repartition", marker)
		}
	}
}

// TestPsnodeClusterElasticRecovery is the process-level acceptance check
// for elastic membership and crash recovery: a cluster of real psnode OS
// processes joins a spare worker mid-stream (-join), decommissions one of
// the originals (-retire), loses another to SIGKILL, redials a fresh
// process on the same port, and must still deliver the byte-identical
// match set of the in-process oracle. CI runs this in the chaos job.
func TestPsnodeClusterElasticRecovery(t *testing.T) {
	w1, w2, w3 := freePort(t), freePort(t), freePort(t)
	adminW1 := freePort(t)
	clusterOut := filepath.Join(t.TempDir(), "cluster.matches")
	oracleOut := filepath.Join(t.TempDir(), "oracle.matches")
	// -objects-only is the migration-exactness contract: standing
	// subscriptions prewarmed behind a barrier, only objects in the
	// measured stream, so join/retire/recovery cell movement cannot
	// race a query registration.
	workloadArgs := []string{"-mu", "400", "-ops", "6000", "-seed", "2017", "-objects-only"}

	oracle := startNode(t, append([]string{"-role", "dispatcher", "-oracle", "-out", oracleOut}, workloadArgs...)...)
	waitNode(t, oracle)
	want, err := os.ReadFile(oracleOut)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("vacuous: oracle run delivered no matches")
	}

	victim := startNode(t, "-role", "worker", "-listen", w1)
	startNode(t, "-role", "worker", "-listen", w2)
	// The joiner listens from the start but stays idle until -join dials it.
	startNode(t, "-role", "worker", "-listen", w3)

	dispatcher, logs := startNodeLogged(t, append([]string{"-role", "dispatcher",
		"-workers", w1 + "," + w2, "-spare", "1", "-recover",
		"-join", w3 + "@2000", "-retire", "1@4000",
		"-out", clusterOut}, workloadArgs...)...)

	// Let the run get going, then kill -9 the first worker and bring a
	// fresh process up on the same port; the coordinator must detect the
	// crash, redial, and replay the lost state from its op log.
	time.Sleep(250 * time.Millisecond)
	if err := victim.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	victim.Wait()
	startNode(t, "-role", "worker", "-listen", w1, "-admin", adminW1)

	waitNode(t, dispatcher)
	got, err := os.ReadFile(clusterOut)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("elastic cluster match set (%d bytes) differs from oracle (%d bytes)", len(got), len(want))
	}

	// Non-vacuousness: the dispatcher log must carry every membership
	// transition the harness injected. A run that finished before the
	// kill landed, or never replayed, passes the byte comparison for the
	// wrong reason.
	text := logs.String()
	for _, marker := range []string{
		"worker joined",
		"worker decommissioned",
		"remote worker down",
		"remote worker recovered",
	} {
		if !strings.Contains(text, marker) {
			t.Errorf("dispatcher log is missing %q; the run did not exercise that transition", marker)
		}
	}

	// The replacement process is a first-class node: its admin plane
	// answers and reports the work replayed onto it.
	waitHealthy(t, adminW1)
	body, err := httpGet(adminW1, "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	m := regexp.MustCompile(`(?m)^ps2_ops_processed_total (\S+)$`).FindStringSubmatch(body)
	if m == nil {
		t.Fatal("recovered worker exposes no ps2_ops_processed_total")
	}
	if v, err := strconv.ParseFloat(m[1], 64); err != nil || v <= 0 {
		t.Errorf("recovered worker reports %s processed ops, want > 0 after replay", m[1])
	}
}

// TestUsageCoversEveryFlag keeps the grouped usage listing exhaustive: a
// flag added without a group would silently vanish from -h.
func TestUsageCoversEveryFlag(t *testing.T) {
	grouped := make(map[string]int)
	for _, g := range flagGroups {
		for _, name := range g.names {
			grouped[name]++
		}
	}
	flag.VisitAll(func(f *flag.Flag) {
		if strings.HasPrefix(f.Name, "test.") {
			return // the testing package's own flags
		}
		switch grouped[f.Name] {
		case 0:
			t.Errorf("flag -%s is not in any usage group", f.Name)
		case 1:
		default:
			t.Errorf("flag -%s appears in %d usage groups", f.Name, grouped[f.Name])
		}
	})
	for name := range grouped {
		if flag.Lookup(name) == nil {
			t.Errorf("usage group lists -%s but no such flag is defined", name)
		}
	}
}

// httpGet fetches one admin endpoint with a short timeout.
func httpGet(addr, path string) (string, error) {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + addr + path)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: status %d", path, resp.StatusCode)
	}
	return string(body), nil
}

// waitHealthy polls a node's /healthz until it answers.
func waitHealthy(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := httpGet(addr, "/healthz"); err == nil {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("admin endpoint %s never became healthy", addr)
}

// TestPsnodeClusterAdminEndpoints is the observability acceptance check:
// a 4-process cluster (dispatcher, two workers, a merger) must expose
// /metrics, /statsz, /healthz and pprof on every node mid-run, and one
// scrape of the dispatcher must report cluster-wide per-worker op counts
// fed by the remote nodes. CI's cluster job runs it and fails on any
// missing series.
func TestPsnodeClusterAdminEndpoints(t *testing.T) {
	w1, w2, mg := freePort(t), freePort(t), freePort(t)
	aw1, aw2, amg, ad := freePort(t), freePort(t), freePort(t), freePort(t)

	// Workers and merger run without -once so their admin endpoints stay
	// scrapable after the coordinator session ends; cleanup kills them.
	startNode(t, "-role", "worker", "-listen", w1, "-admin", aw1)
	startNode(t, "-role", "worker", "-listen", w2, "-admin", aw2)
	startNode(t, "-role", "merger", "-listen", mg, "-admin", amg)
	// -adjust paces publishing, keeping the dispatcher alive long enough
	// to scrape it mid-run.
	dispatcher := startNode(t, "-role", "dispatcher",
		"-workers", w1+","+w2, "-mergers", mg, "-admin", ad,
		"-adjust", "-mu", "300", "-ops", "30000", "-seed", "2017")

	admins := map[string]string{"worker": aw1, "worker2": aw2, "merger": amg, "dispatcher": ad}
	for _, addr := range admins {
		waitHealthy(t, addr)
	}

	// Every node: all four endpoint families answer, and /healthz reports
	// the role.
	for role, addr := range admins {
		wantRole := strings.TrimSuffix(role, "2")
		health, err := httpGet(addr, "/healthz")
		if err != nil {
			t.Fatalf("%s /healthz: %v", role, err)
		}
		var h struct {
			Status string `json:"status"`
			Role   string `json:"role"`
		}
		if err := json.Unmarshal([]byte(health), &h); err != nil {
			t.Fatalf("%s /healthz is not JSON: %v", role, err)
		}
		if h.Status != "ok" || h.Role != wantRole {
			t.Errorf("%s /healthz = %+v, want status ok role %s", role, h, wantRole)
		}
		statsz, err := httpGet(addr, "/statsz")
		if err != nil {
			t.Fatalf("%s /statsz: %v", role, err)
		}
		var js struct {
			Series []struct {
				Name string `json:"name"`
			} `json:"series"`
		}
		if err := json.Unmarshal([]byte(statsz), &js); err != nil {
			t.Fatalf("%s /statsz is not JSON: %v", role, err)
		}
		if len(js.Series) == 0 {
			t.Errorf("%s /statsz has no series", role)
		}
		if _, err := httpGet(addr, "/debug/pprof/cmdline"); err != nil {
			t.Errorf("%s pprof: %v", role, err)
		}
	}

	// Role-specific series on /metrics.
	wantSeries := map[string][]string{
		"worker":     {"ps2_ops_processed_total", `ps2_worker_ops_total{kind="object"}`, "ps2_wire_frames_total"},
		"worker2":    {"ps2_ops_processed_total", "ps2_route_epoch"},
		"merger":     {"ps2_matches_delivered_total", "ps2_matches_duplicates_total", "ps2_wire_frames_total"},
		"dispatcher": {"ps2_ops_processed_total", "ps2_stage_seconds_bucket", `ps2_worker_ops_total{kind="object",worker="0"}`, `ps2_worker_ops_total{kind="object",worker="1"}`, "ps2_worker_load_ewma", "ps2_adjust_checks_total", "ps2_migrations_total", "ps2_wire_frames_total"},
	}
	for role, series := range wantSeries {
		body, err := httpGet(admins[role], "/metrics")
		if err != nil {
			t.Fatalf("%s /metrics: %v", role, err)
		}
		for _, s := range series {
			if !strings.Contains(body, s) {
				t.Errorf("%s /metrics is missing %s", role, s)
			}
		}
	}

	// Cluster-wide aggregation: after the run the dispatcher's mirror of
	// the remote workers' op counters must show real progress (it is fed
	// by the controller's polls and refreshed per scrape).
	waitNode(t, dispatcher)
	var remoteOps float64
	for _, addr := range []string{aw1, aw2} {
		body, err := httpGet(addr, "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		re := regexp.MustCompile(`(?m)^ps2_ops_processed_total (\S+)$`)
		m := re.FindStringSubmatch(body)
		if m == nil {
			t.Fatal("worker node exposes no ps2_ops_processed_total")
		}
		v, err := strconv.ParseFloat(m[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		remoteOps += v
	}
	if remoteOps <= 0 {
		t.Error("vacuous: worker nodes report zero processed ops")
	}
}
