// Command psnode runs one PS2Stream topology role as its own OS
// process, turning the in-process reproduction into a real networked
// deployment (the paper's §VI runs the same roles as Storm tasks across
// a cluster). Roles speak the internal/wire protocol: length-prefixed
// gob frames over TCP (docs/WIRE.md).
//
// A local 1-dispatcher / 2-worker / 1-merger cluster:
//
//	psnode -role worker -listen 127.0.0.1:7101 -once &
//	psnode -role worker -listen 127.0.0.1:7102 -once &
//	psnode -role merger -listen 127.0.0.1:7103 -once -out cluster.matches &
//	psnode -role dispatcher -workers 127.0.0.1:7101,127.0.0.1:7102 \
//	       -mergers 127.0.0.1:7103 -mu 500 -ops 4000 -seed 2017
//
// The dispatcher node embeds the coordinator (spout + dispatcher tasks),
// generates the seeded workload, and drives it through the remote
// workers; their matches flow to the merger node, which deduplicates,
// counts, and (with -out) dumps the delivered match set sorted — the
// same format the oracle mode writes, so the two runs diff byte for
// byte:
//
//	psnode -role dispatcher -oracle -mu 500 -ops 4000 -seed 2017 -out oracle.matches
//	diff cluster.matches oracle.matches
//
// Start order does not matter: the dispatcher dials peers with
// exponential backoff.
//
// With -adjust the dispatcher runs the adaptive load adjustment
// controller: hot grid cells migrate between the worker processes over
// the wire's cell-migration control frames while the stream keeps
// flowing. Combine with the skewed-hotspot workload flags (-hotspot,
// -hotspot-bias, -hotspot-shift-every, psgen's spelling) to watch a
// cluster rebalance after a traffic shift. The controller's decision
// trace — every detector verdict, trigger, and migration — is emitted as
// structured slog lines on stderr.
//
// Every role accepts -admin to serve an HTTP observability endpoint:
// Prometheus-text metrics on /metrics, the same series as JSON on
// /statsz, liveness and build info on /healthz, and net/http/pprof under
// /debug/pprof/. On the dispatcher a scrape reports the whole cluster
// (remote workers' counters are folded in); the bound address is logged
// at startup, so ":0" works for scripts:
//
//	psnode -role worker -listen 127.0.0.1:7101 -admin 127.0.0.1:9101 &
//	curl -s http://127.0.0.1:9101/metrics
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"ps2stream/internal/core"
	"ps2stream/internal/faultnet"
	"ps2stream/internal/metrics"
	"ps2stream/internal/model"
	"ps2stream/internal/node"
	"ps2stream/internal/obs"
	"ps2stream/internal/wire"
	"ps2stream/internal/workload"
)

// flagGroups orders the usage listing by the role each flag belongs to,
// so `psnode -h` reads as three small flag sets instead of one
// alphabetical soup. Every defined flag must appear in exactly one group
// (TestUsageCoversEveryFlag enforces it).
var flagGroups = []struct {
	title string
	names []string
}{
	{"All roles", []string{"role", "admin"}},
	{"Worker and merger nodes", []string{"listen", "once", "out", "fault"}},
	{"Dispatcher (embedded coordinator)", []string{
		"workers", "mergers", "dispatchers", "mu", "ops", "seed", "batch",
		"oracle", "adjust", "objects-only",
		"hotspot", "hotspot-bias", "hotspot-shift-every",
		"spare", "recover", "join", "retire",
		"wire-streams",
		"topk", "topk-k", "topk-window", "topk-out", "repartition-at",
	}},
}

func groupedUsage() {
	w := flag.CommandLine.Output()
	fmt.Fprintln(w, "Usage: psnode -role <worker|merger|dispatcher> [flags]")
	for _, g := range flagGroups {
		fmt.Fprintf(w, "\n%s:\n", g.title)
		for _, name := range g.names {
			f := flag.Lookup(name)
			if f == nil {
				continue
			}
			typ, help := flag.UnquoteUsage(f)
			line := "  -" + f.Name
			if typ != "" {
				line += " " + typ
			}
			fmt.Fprintf(w, "%s\n    \t%s", line, help)
			if f.DefValue != "" && f.DefValue != "false" {
				fmt.Fprintf(w, " (default %s)", f.DefValue)
			}
			fmt.Fprintln(w)
		}
	}
}

// The flags are package-level so TestUsageCoversEveryFlag can check the
// groups above stay exhaustive as flags are added.
var (
	role  = flag.String("role", "", "worker | merger | dispatcher")
	admin = flag.String("admin", "", "serve /metrics, /statsz, /healthz and /debug/pprof/ on this address; \":0\" picks a free port, logged at startup")

	listen = flag.String("listen", "127.0.0.1:0", "listen address")
	once   = flag.Bool("once", false, "exit after the coordinator session ends")
	out    = flag.String("out", "", "write the delivered match set to this file, sorted (merger, or dispatcher with -oracle/local mergers)")
	fault  = flag.String("fault", "", "deterministic fault schedule on accepted connections, e.g. \"seed=7,drop=0.002,delay=0.05,delaymax=10ms,dup=0.01,skip=16\"")

	workers     = flag.String("workers", "", "comma-separated worker addresses")
	mergers     = flag.String("mergers", "", "comma-separated merger addresses")
	dispatchers = flag.Int("dispatchers", 2, "dispatcher task count")
	mu          = flag.Int("mu", 500, "standing subscriptions to prewarm")
	ops         = flag.Int("ops", 4000, "stream operations to publish")
	seed        = flag.Int64("seed", 2017, "workload seed")
	batch       = flag.Int("batch", 0, "transfer batch size, 0 = default")
	oracle      = flag.Bool("oracle", false, "run the workload fully in-process instead of joining peers")
	adjust      = flag.Bool("adjust", false, "enable the adaptive load adjustment controller; cells migrate across the wire when workers are remote")
	objectsOnly = flag.Bool("objects-only", false, "publish only objects in the measured stream; with -adjust the delivered match set is then exactly the static oracle's (a query registered while its cell migrates may miss concurrent objects, exactly as in-process)")
	hotspot     = flag.Int("hotspot", -1, "focus object traffic on this hotspot cluster index (-1 off)")
	hotBias     = flag.Float64("hotspot-bias", 0.85, "fraction of objects concentrated on the focused hotspot")
	hotShift    = flag.Int("hotspot-shift-every", 0, "shift the focus to the next hotspot every N stream ops (0 never)")

	topkN      = flag.Int("topk", 0, "register this many sliding-window top-k subscriptions cloned from the prewarmed standing queries; freezes the logical clock so cluster and oracle runs rank identically")
	topkK      = flag.Int("topk-k", 5, "k for the -topk subscriptions")
	topkWindow = flag.Duration("topk-window", 24*time.Hour, "sliding window for the -topk subscriptions")
	topkOut    = flag.String("topk-out", "", "write the final reconciled top-k sets to this file, sorted (diffable against an -oracle run)")
	repartAt   = flag.Int("repartition-at", 0, "run a global repartition (fresh sample, every cell re-placed over the wire) after this many stream ops (0 never)")

	spare       = flag.Int("spare", 0, "reserve this many routing slots for workers joined at runtime")
	recoverFlag = flag.Bool("recover", false, "survive remote worker crashes: heartbeats, per-worker op log, redial + replay")
	join        = flag.String("join", "", "join worker addresses mid-stream: \"addr@ops[,addr@ops...]\" dials addr after that many stream ops (needs -spare)")
	retire      = flag.String("retire", "", "decommission worker tasks mid-stream: \"task@ops[,task@ops...]\"")
	wireStreams = flag.Int("wire-streams", 0, "data connections per remote-worker hop (0 = one per dispatcher task, capped at 16)")
)

func main() {
	flag.Usage = groupedUsage
	flag.Parse()
	logger := log.New(os.Stderr, "psnode: ", log.Ltime|log.Lmicroseconds)

	switch *role {
	case "worker":
		ctx := context.Background()
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			logger.Fatal(err)
		}
		logger.Printf("worker: listening on %s", ln.Addr())
		if *fault != "" {
			fc, err := parseFaultSpec(*fault)
			if err != nil {
				logger.Fatal(err)
			}
			logger.Printf("worker: fault schedule %+v", fc)
			ln = faultnet.WrapListener(ln, fc)
		}
		w := node.NewWorker(node.WorkerOptions{
			Log:  logger.Printf,
			Once: *once,
		})
		startAdmin(logger, *admin, "worker", w.Registry(), w.Epoch, nil)
		if err := w.Serve(ctx, ln); err != nil && ctx.Err() == nil {
			logger.Fatal(err)
		}
	case "merger":
		runMerger(logger, *listen, *once, *out, *admin)
	case "dispatcher":
		events, err := parseMemberEvents(*join, *retire)
		if err != nil {
			logger.Fatal(err)
		}
		runDispatcher(logger, dispatcherConfig{
			workerAddrs: splitAddrs(*workers),
			mergerAddrs: splitAddrs(*mergers),
			dispatchers: *dispatchers,
			mu:          *mu,
			ops:         *ops,
			seed:        *seed,
			batch:       *batch,
			oracle:      *oracle,
			out:         *out,
			admin:       *admin,
			adjust:      *adjust,
			objectsOnly: *objectsOnly,
			hotspot:     *hotspot,
			hotBias:     *hotBias,
			hotShift:    *hotShift,
			spare:       *spare,
			recover:     *recoverFlag,
			events:      events,
			wireStreams: *wireStreams,
			topk:        *topkN,
			topkK:       *topkK,
			topkWindow:  *topkWindow,
			topkOut:     *topkOut,
			repartAt:    *repartAt,
		})
	default:
		fmt.Fprintln(os.Stderr, "psnode: -role must be worker, merger or dispatcher")
		flag.Usage()
		os.Exit(2)
	}
}

// startAdmin serves the observability endpoints when -admin was given.
// The server lives for the rest of the process; the bound address is
// logged so scripts can pass ":0" and scrape whatever was picked.
func startAdmin(logger *log.Logger, addr, role string, reg *metrics.Registry, epoch func() uint64, beforeScrape func()) *obs.Server {
	if addr == "" {
		return nil
	}
	srv, err := obs.Serve(addr, obs.Options{
		Registry:     reg,
		Role:         role,
		Epoch:        epoch,
		BeforeScrape: beforeScrape,
	})
	if err != nil {
		logger.Fatal(err)
	}
	logger.Printf("admin: listening on %s", srv.Addr())
	return srv
}

// parseFaultSpec parses the -fault mini-language: comma-separated k=v
// pairs mapping onto faultnet.Config.
func parseFaultSpec(s string) (faultnet.Config, error) {
	var cfg faultnet.Config
	for _, kv := range strings.Split(s, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return cfg, fmt.Errorf("-fault: %q is not key=value", kv)
		}
		var err error
		switch k {
		case "seed":
			_, err = fmt.Sscanf(v, "%d", &cfg.Seed)
		case "drop":
			_, err = fmt.Sscanf(v, "%g", &cfg.Drop)
		case "delay":
			_, err = fmt.Sscanf(v, "%g", &cfg.Delay)
		case "delaymax":
			cfg.DelayMax, err = time.ParseDuration(v)
		case "dup":
			_, err = fmt.Sscanf(v, "%g", &cfg.Dup)
		case "skip":
			_, err = fmt.Sscanf(v, "%d", &cfg.SkipFrames)
		default:
			return cfg, fmt.Errorf("-fault: unknown key %q", k)
		}
		if err != nil {
			return cfg, fmt.Errorf("-fault: %q: %v", kv, err)
		}
	}
	return cfg, nil
}

// memberEvent is one scheduled membership change: join a worker at addr
// (task < 0) or retire the given task, once `at` stream ops have been
// submitted.
type memberEvent struct {
	at   int
	addr string
	task int
}

// parseMemberEvents parses "-join addr@ops" / "-retire task@ops" lists
// (comma-separated) into a schedule sorted by trigger point.
func parseMemberEvents(joins, retires string) ([]memberEvent, error) {
	var evs []memberEvent
	for _, spec := range splitAddrs(joins) {
		addr, at, ok := strings.Cut(spec, "@")
		var n int
		if _, err := fmt.Sscanf(at, "%d", &n); !ok || err != nil || addr == "" {
			return nil, fmt.Errorf("-join: %q is not addr@ops", spec)
		}
		evs = append(evs, memberEvent{at: n, addr: addr, task: -1})
	}
	for _, spec := range splitAddrs(retires) {
		taskStr, at, ok := strings.Cut(spec, "@")
		var n, task int
		if _, err := fmt.Sscanf(at, "%d", &n); !ok || err != nil {
			return nil, fmt.Errorf("-retire: %q is not task@ops", spec)
		}
		if _, err := fmt.Sscanf(taskStr, "%d", &task); err != nil {
			return nil, fmt.Errorf("-retire: %q is not task@ops", spec)
		}
		evs = append(evs, memberEvent{at: n, task: task})
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].at < evs[j].at })
	return evs, nil
}

func splitAddrs(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// matchDump accumulates delivered matches and writes them sorted and
// deduplicated — a canonical form two runs can diff byte for byte.
type matchDump struct {
	mu   sync.Mutex
	seen map[model.Match]struct{}
}

func newMatchDump() *matchDump {
	return &matchDump{seen: make(map[model.Match]struct{})}
}

func (d *matchDump) add(m model.Match) {
	m.Worker = 0 // placement detail, not part of the match identity
	d.mu.Lock()
	d.seen[m] = struct{}{}
	d.mu.Unlock()
}

func (d *matchDump) write(path string) error {
	d.mu.Lock()
	ms := make([]model.Match, 0, len(d.seen))
	for m := range d.seen {
		ms = append(ms, m)
	}
	d.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].QueryID != ms[j].QueryID {
			return ms[i].QueryID < ms[j].QueryID
		}
		return ms[i].ObjectID < ms[j].ObjectID
	})
	var sb strings.Builder
	for _, m := range ms {
		fmt.Fprintf(&sb, "%d %d %d\n", m.QueryID, m.ObjectID, m.Subscriber)
	}
	return os.WriteFile(path, []byte(sb.String()), 0o644)
}

func runMerger(logger *log.Logger, listen string, once bool, out, admin string) {
	var dump *matchDump
	opts := node.MergerOptions{Log: logger.Printf, Once: once}
	if out != "" {
		dump = newMatchDump()
		opts.OnMatch = dump.add
	}
	ln, lerr := net.Listen("tcp", listen)
	if lerr != nil {
		logger.Fatal(lerr)
	}
	logger.Printf("merger: listening on %s", ln.Addr())
	m := node.NewMerger(opts)
	startAdmin(logger, admin, "merger", m.Registry(), nil, nil)
	err := m.Serve(context.Background(), ln)
	delivered, dups := m.Counts()
	logger.Printf("merger: delivered %d matches (%d duplicates suppressed)", delivered, dups)
	if dump != nil {
		if werr := dump.write(out); werr != nil {
			logger.Fatal(werr)
		}
		logger.Printf("merger: match set written to %s", out)
	}
	if err != nil && err != context.Canceled {
		logger.Fatal(err)
	}
}

type dispatcherConfig struct {
	workerAddrs []string
	mergerAddrs []string
	dispatchers int
	mu, ops     int
	seed        int64
	batch       int
	oracle      bool
	out         string
	// admin is the observability endpoint address ("" disables).
	admin string
	// adjust enables the adaptive controller; with remote workers its
	// migrations cross the wire.
	adjust bool
	// objectsOnly drops query ops from the measured stream (the
	// migration-exactness contract: standing queries + live objects).
	objectsOnly bool
	// hotspot/hotBias/hotShift configure the skewed-hotspot object
	// workload (psgen's flags of the same names).
	hotspot  int
	hotBias  float64
	hotShift int
	// spare reserves routing slots for runtime joins; recover enables
	// crash detection + redial/replay; events are the scheduled -join and
	// -retire membership changes, sorted by trigger point.
	spare   int
	recover bool
	events  []memberEvent
	// wireStreams overrides the data connections per remote-worker hop
	// (core.Config.WireStreams; 0 = one per dispatcher task).
	wireStreams int
	// topk registers that many sliding-window top-k subscriptions cloned
	// from the prewarmed standing queries (k = topkK, window =
	// topkWindow); topkOut dumps the final reconciled sets. Top-k runs
	// freeze the logical clock: decay rank then depends only on textual
	// relevance, so a cluster run and an -oracle run of the same seed
	// produce byte-identical dumps no matter how long recovery or
	// repartition stalls the wall clock.
	topk       int
	topkK      int
	topkWindow time.Duration
	topkOut    string
	// repartAt schedules one GlobalRepartition — every cell re-placed
	// from a fresh assignment, over the wire when workers are remote —
	// after that many measured stream ops.
	repartAt int
}

// topkDump renders the reconciled top-k sets in a canonical sorted form
// (query id ascending, member ids ascending) so a cluster run and an
// oracle run diff byte for byte.
func topkDump(sys *core.System, ids []uint64) string {
	var sb strings.Builder
	for _, id := range ids {
		fmt.Fprintf(&sb, "%d:", id)
		for _, m := range sys.TopKSet(id) {
			fmt.Fprintf(&sb, " %d", m)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// runDispatcher embeds the coordinator: it builds the partitioning
// sample, connects the remote peers (unless -oracle), prewarms µ
// standing subscriptions, streams the seeded workload, drains end to
// end, and reports counts.
func runDispatcher(logger *log.Logger, dc dispatcherConfig) {
	spec := workload.TweetsUS()
	sample := workload.Sample(spec, workload.Q1, 3000, 600, dc.seed)
	if dc.topkOut != "" && dc.topk == 0 {
		logger.Fatal("-topk-out needs -topk")
	}
	var dump *matchDump
	cfg := core.Config{
		Dispatchers: dc.dispatchers,
		BatchSize:   dc.batch,
		// The adjustment decision trace (detector verdicts at Debug,
		// triggers and migrations at Info) goes to stderr alongside the
		// plain progress log.
		Logger: slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{
			Level: slog.LevelInfo,
		})),
	}
	if dc.adjust {
		// Tracing every 15ms detector verdict is what -adjust runs are
		// for; quiet runs keep the Info-level trace only.
		cfg.Logger = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{
			Level: slog.LevelDebug,
		}))
		// An aggressive cadence sized for short CI runs: the hotspot
		// shift must be detected and spread within a few hundred
		// milliseconds of paced traffic.
		cfg.Adjust = core.AdjustConfig{
			Enabled:       true,
			Sigma:         1.2,
			Interval:      15 * time.Millisecond,
			Cooldown:      30 * time.Millisecond,
			SustainChecks: 1,
			MinWindowOps:  64,
			Seed:          dc.seed,
		}
	}
	if dc.oracle {
		if len(dc.workerAddrs) > 0 || len(dc.mergerAddrs) > 0 {
			logger.Fatal("-oracle runs fully in-process; drop -workers/-mergers")
		}
		if dc.spare > 0 || dc.recover || len(dc.events) > 0 {
			logger.Fatal("-spare/-recover/-join/-retire need remote workers; drop them with -oracle")
		}
		cfg.Workers = 2
	} else {
		if len(dc.workerAddrs) == 0 {
			logger.Fatal("dispatcher needs -workers (or -oracle)")
		}
		// Every worker task lives on a peer: the dispatcher node routes,
		// it does not match.
		cfg.Workers = len(dc.workerAddrs)
		// Membership options go on the config before the dial: the
		// handshake hello carries the total slot count and the heartbeat
		// request.
		cfg.SpareWorkers = dc.spare
		cfg.WireStreams = dc.wireStreams
		if dc.recover {
			// Cadences sized for short CI runs: fast enough that a crash,
			// redial, and replay complete within a few seconds of stream
			// time, without sub-100ms timers that flake loaded runners.
			cfg.Recovery = core.RecoveryConfig{
				Enabled:            true,
				CheckpointInterval: 250 * time.Millisecond,
				HeartbeatInterval:  100 * time.Millisecond,
				RedialTimeout:      30 * time.Second,
			}
		}
		if err := cfg.ConnectRemoteWorkers(dc.workerAddrs, sample, wire.Backoff{}); err != nil {
			logger.Fatal(err)
		}
		// Likewise all merger tasks remote when merger peers are given;
		// without any, the dispatcher node mergers locally.
		cfg.Mergers = len(dc.mergerAddrs)
		if err := cfg.ConnectRemoteMergers(dc.mergerAddrs, sample, wire.Backoff{}); err != nil {
			logger.Fatal(err)
		}
		logger.Printf("dispatcher: %d remote workers (%s), %d remote mergers",
			len(dc.workerAddrs), cfg.RemoteWorkerSummary(), len(dc.mergerAddrs))
	}
	if dc.topk > 0 {
		// Freeze the logical clock: every op in the cluster run and the
		// oracle run carries the same publish stamp, so decay rank depends
		// only on textual relevance and the top-k dumps diff byte for
		// byte. Expiry never fires under a frozen clock; the window flag
		// only sizes checkpoint refill retention.
		frozen := time.Unix(1_700_000_000, 0)
		cfg.Clock = func() time.Time { return frozen }
	}
	if dc.out != "" {
		if !dc.oracle && len(dc.mergerAddrs) > 0 {
			logger.Fatal("-out on the dispatcher needs local mergers; with remote mergers pass -out to the merger node")
		}
		dump = newMatchDump()
		cfg.OnMatch = dump.add
	}

	sys, err := core.New(cfg, sample)
	if err != nil {
		logger.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		logger.Fatal(err)
	}
	// A scrape of the dispatcher reports the whole cluster: remote
	// workers' counters are refreshed (rate-limited) before each scrape.
	startAdmin(logger, dc.admin, "dispatcher", sys.Registry(), sys.RouteEpoch,
		func() { sys.RefreshRemoteStats(500 * time.Millisecond) })
	scfg := workload.StreamConfig{Mu: dc.mu, Seed: dc.seed}
	if dc.hotspot >= 0 {
		scfg.FocusBias = dc.hotBias
		scfg.FocusHotspot = dc.hotspot
	}
	st := workload.NewStream(spec, workload.Q1, scfg)
	warm := st.Prewarm(dc.mu)
	sys.SubmitAll(warm)
	if err := sys.Drain(int64(len(warm))); err != nil {
		logger.Fatal(err)
	}
	logger.Printf("dispatcher: %d standing subscriptions prewarmed", dc.mu)
	// The measured stream is pre-generated (op-by-op, so the hotspot
	// focus can still shift by index) before anything is published: the
	// top-k mix below is chosen against it, and the static path submits
	// it in one tight burst as before.
	focused := dc.hotspot
	nextOp := func(i int) model.Op {
		if dc.hotspot >= 0 && dc.hotShift > 0 && i > 0 && i%dc.hotShift == 0 {
			focused++
			st.FocusHotspot(focused)
		}
		op := st.Next()
		for dc.objectsOnly && op.Kind != model.OpObject {
			op = st.Next()
		}
		return op
	}
	stream := make([]model.Op, dc.ops)
	for i := range stream {
		stream[i] = nextOp(i)
	}
	// Top-k subscriptions clone prewarmed query shapes — the ones that
	// match the most stream objects, so the sets provably rank something
	// — under fresh ids (and a distinct subscriber) that keep the boolean
	// match set untouched. The scan is deterministic, so a cluster run
	// and an -oracle run of the same seed pick the same shapes.
	var topkIDs []uint64
	if dc.topk > 0 {
		type cand struct {
			q *model.Query
			n int
		}
		var cands []cand
		for _, op := range warm {
			if op.Kind == model.OpInsert && op.Query != nil {
				cands = append(cands, cand{q: op.Query})
			}
		}
		for _, op := range stream {
			if op.Kind != model.OpObject {
				continue
			}
			for i := range cands {
				if cands[i].q.Matches(op.Obj) {
					cands[i].n++
				}
			}
		}
		sort.SliceStable(cands, func(i, j int) bool { return cands[i].n > cands[j].n })
		var qs []model.Op
		for _, c := range cands {
			if c.n == 0 || len(qs) == dc.topk {
				break
			}
			q := *c.q
			q.ID = 990001 + uint64(len(qs))
			q.Subscriber = 42
			q.TopK = dc.topkK
			q.Window = dc.topkWindow
			topkIDs = append(topkIDs, q.ID)
			qs = append(qs, model.Op{Kind: model.OpInsert, Query: &q})
		}
		if len(qs) < dc.topk {
			logger.Fatalf("-topk %d: only %d prewarmed shapes match any stream object; lower -topk or raise -ops",
				dc.topk, len(qs))
		}
		sys.SubmitAll(qs)
		if err := sys.Drain(int64(len(warm) + len(qs))); err != nil {
			logger.Fatal(err)
		}
		logger.Printf("dispatcher: %d top-k subscriptions registered (k=%d window=%v)",
			len(qs), dc.topkK, dc.topkWindow)
	}
	base := int64(len(warm) + len(topkIDs))
	// One scheduled global repartition: a drain barrier, then every cell
	// re-placed from a differently-seeded sample (the same seed would
	// rebuild the identical assignment and move nothing). The dual-route
	// transition is retired before the final counters.
	repartPending := dc.repartAt > 0
	maybeRepartition := func(sent int) {
		if !repartPending || sent < dc.repartAt {
			return
		}
		repartPending = false
		if err := sys.Drain(base + int64(sent)); err != nil {
			logger.Fatal(err)
		}
		sample2 := workload.Sample(spec, workload.Q1, 3000, 600, dc.seed+1)
		if err := sys.GlobalRepartition(sample2, nil); err != nil {
			logger.Fatalf("global repartition after %d ops: %v", sent, err)
		}
		logger.Printf("dispatcher: global repartition begun after %d ops (assignment %s)",
			sent, sys.Assignment().Name())
	}

	t0 := time.Now()
	// Scheduled membership changes fire between bursts once the stream
	// has advanced past their trigger point. A failure is fatal: the
	// harness asked for a membership change and silently skipping it
	// would let a vacuous run pass.
	events := dc.events
	fireEvents := func(sent int) {
		for len(events) > 0 && sent >= events[0].at {
			ev := events[0]
			events = events[1:]
			if ev.task < 0 {
				task, err := sys.AddWorker(ev.addr)
				if err != nil {
					logger.Fatalf("join %s after %d ops: %v", ev.addr, sent, err)
				}
				logger.Printf("dispatcher: worker %s joined as task %d after %d ops", ev.addr, task, sent)
			} else {
				if err := sys.DecommissionWorker(ev.task); err != nil {
					logger.Fatalf("retire task %d after %d ops: %v", ev.task, sent, err)
				}
				logger.Printf("dispatcher: worker task %d decommissioned after %d ops", ev.task, sent)
			}
		}
	}
	if dc.adjust || len(dc.events) > 0 || dc.repartAt > 0 {
		// With the controller on, publishing is paced in small bursts:
		// the detector needs wall-clock Interval windows of live traffic
		// to observe the shift and react, which an unpaced burst would
		// compress into a single window. Membership events ride the same
		// loop (unpaced without -adjust) so they interleave with live
		// traffic instead of before/after it.
		const burstEvery = 3 * time.Millisecond
		const perBurst = 48
		for sent := 0; sent < dc.ops; {
			fireEvents(sent)
			maybeRepartition(sent)
			for j := 0; j < perBurst && sent < dc.ops; j++ {
				sys.Submit(stream[sent])
				sent++
			}
			if dc.adjust && sent < dc.ops {
				time.Sleep(burstEvery)
			}
		}
		fireEvents(dc.ops)
		maybeRepartition(dc.ops)
	} else {
		// Static runs submit in one tight burst, exactly like the
		// pre-adjust dispatcher: trickling ops into the spout would widen
		// the cross-dispatcher insert/object race window, making cluster
		// and oracle runs diverge on the mixed stream.
		sys.SubmitAll(stream)
	}
	if err := sys.Drain(base + int64(dc.ops)); err != nil {
		logger.Fatal(err)
	}
	if dc.repartAt > 0 {
		moved := sys.FinishGlobalRepartition()
		logger.Printf("dispatcher: global repartition finished, %d stale-routed queries relocated (assignment %s)",
			moved, sys.Assignment().Name())
	}
	elapsed := time.Since(t0)
	if dc.adjust {
		adj := sys.Snapshot().Adjust
		logger.Printf("dispatcher: adjust migrations=%d cells=%d queries=%d bytes=%d (checks=%d triggers=%d)",
			adj.Migrations, adj.CellsMoved, adj.QueriesMoved, adj.BytesMoved, adj.Checks, adj.Triggers)
	}

	delivered := sys.MatchCount()
	var remoteNote string
	if rd, rdup, err := sys.RemoteDelivered(); err != nil {
		logger.Fatal(err)
	} else if rd+rdup > 0 {
		delivered += rd
		remoteNote = fmt.Sprintf(" (%d on remote mergers)", rd)
	}
	logger.Printf("dispatcher: %d ops in %v (%.0f tuples/s), %d matches delivered%s",
		dc.ops, elapsed.Round(time.Millisecond), float64(dc.ops)/elapsed.Seconds(), delivered, remoteNote)

	if dc.topkOut != "" {
		if err := os.WriteFile(dc.topkOut, []byte(topkDump(sys, topkIDs)), 0o644); err != nil {
			logger.Fatal(err)
		}
		logger.Printf("dispatcher: top-k sets written to %s", dc.topkOut)
	}
	if err := sys.Close(); err != nil {
		logger.Fatal(err)
	}
	if dump != nil {
		if err := dump.write(dc.out); err != nil {
			logger.Fatal(err)
		}
		logger.Printf("dispatcher: match set written to %s", dc.out)
	}
}
