// Command psnode runs one PS2Stream topology role as its own OS
// process, turning the in-process reproduction into a real networked
// deployment (the paper's §VI runs the same roles as Storm tasks across
// a cluster). Roles speak the internal/wire protocol: length-prefixed
// gob frames over TCP (docs/WIRE.md).
//
// A local 1-dispatcher / 2-worker / 1-merger cluster:
//
//	psnode -role worker -listen 127.0.0.1:7101 -once &
//	psnode -role worker -listen 127.0.0.1:7102 -once &
//	psnode -role merger -listen 127.0.0.1:7103 -once -out cluster.matches &
//	psnode -role dispatcher -workers 127.0.0.1:7101,127.0.0.1:7102 \
//	       -mergers 127.0.0.1:7103 -mu 500 -ops 4000 -seed 2017
//
// The dispatcher node embeds the coordinator (spout + dispatcher tasks),
// generates the seeded workload, and drives it through the remote
// workers; their matches flow to the merger node, which deduplicates,
// counts, and (with -out) dumps the delivered match set sorted — the
// same format the oracle mode writes, so the two runs diff byte for
// byte:
//
//	psnode -role dispatcher -oracle -mu 500 -ops 4000 -seed 2017 -out oracle.matches
//	diff cluster.matches oracle.matches
//
// Start order does not matter: the dispatcher dials peers with
// exponential backoff.
//
// With -adjust the dispatcher runs the adaptive load adjustment
// controller: hot grid cells migrate between the worker processes over
// the wire's cell-migration control frames while the stream keeps
// flowing. Combine with the skewed-hotspot workload flags (-hotspot,
// -hotspot-bias, -hotspot-shift-every, psgen's spelling) to watch a
// cluster rebalance after a traffic shift.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"ps2stream/internal/core"
	"ps2stream/internal/model"
	"ps2stream/internal/node"
	"ps2stream/internal/wire"
	"ps2stream/internal/workload"
)

func main() {
	var (
		role   = flag.String("role", "", "worker | merger | dispatcher")
		listen = flag.String("listen", "127.0.0.1:0", "listen address (worker, merger)")
		once   = flag.Bool("once", false, "exit after the coordinator session ends (worker, merger)")
		out    = flag.String("out", "", "write the delivered/oracle match set to this file, sorted (merger, dispatcher -oracle)")

		workers     = flag.String("workers", "", "comma-separated worker addresses (dispatcher)")
		mergers     = flag.String("mergers", "", "comma-separated merger addresses (dispatcher)")
		dispatchers = flag.Int("dispatchers", 2, "dispatcher task count (dispatcher)")
		mu          = flag.Int("mu", 500, "standing subscriptions to prewarm (dispatcher)")
		ops         = flag.Int("ops", 4000, "stream operations to publish (dispatcher)")
		seed        = flag.Int64("seed", 2017, "workload seed (dispatcher)")
		batch       = flag.Int("batch", 0, "transfer batch size, 0 = default (dispatcher)")
		oracle      = flag.Bool("oracle", false, "run the workload fully in-process instead of joining peers (dispatcher)")
		adjust      = flag.Bool("adjust", false, "enable the adaptive load adjustment controller; cells migrate across the wire when workers are remote (dispatcher)")
		objectsOnly = flag.Bool("objects-only", false, "publish only objects in the measured stream; with -adjust the delivered match set is then exactly the static oracle's (a query registered while its cell migrates may miss concurrent objects, exactly as in-process) (dispatcher)")
		hotspot     = flag.Int("hotspot", -1, "focus object traffic on this hotspot cluster index (-1 off; dispatcher)")
		hotBias     = flag.Float64("hotspot-bias", 0.85, "fraction of objects concentrated on the focused hotspot (dispatcher)")
		hotShift    = flag.Int("hotspot-shift-every", 0, "shift the focus to the next hotspot every N stream ops (0 never; dispatcher)")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "psnode: ", log.Ltime|log.Lmicroseconds)

	switch *role {
	case "worker":
		ctx := context.Background()
		err := node.ListenAndServeWorker(ctx, *listen, node.WorkerOptions{
			Log:  logger.Printf,
			Once: *once,
		})
		if err != nil && ctx.Err() == nil {
			logger.Fatal(err)
		}
	case "merger":
		runMerger(logger, *listen, *once, *out)
	case "dispatcher":
		runDispatcher(logger, dispatcherConfig{
			workerAddrs: splitAddrs(*workers),
			mergerAddrs: splitAddrs(*mergers),
			dispatchers: *dispatchers,
			mu:          *mu,
			ops:         *ops,
			seed:        *seed,
			batch:       *batch,
			oracle:      *oracle,
			out:         *out,
			adjust:      *adjust,
			objectsOnly: *objectsOnly,
			hotspot:     *hotspot,
			hotBias:     *hotBias,
			hotShift:    *hotShift,
		})
	default:
		fmt.Fprintln(os.Stderr, "psnode: -role must be worker, merger or dispatcher")
		flag.Usage()
		os.Exit(2)
	}
}

func splitAddrs(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// matchDump accumulates delivered matches and writes them sorted and
// deduplicated — a canonical form two runs can diff byte for byte.
type matchDump struct {
	mu   sync.Mutex
	seen map[model.Match]struct{}
}

func newMatchDump() *matchDump {
	return &matchDump{seen: make(map[model.Match]struct{})}
}

func (d *matchDump) add(m model.Match) {
	m.Worker = 0 // placement detail, not part of the match identity
	d.mu.Lock()
	d.seen[m] = struct{}{}
	d.mu.Unlock()
}

func (d *matchDump) write(path string) error {
	d.mu.Lock()
	ms := make([]model.Match, 0, len(d.seen))
	for m := range d.seen {
		ms = append(ms, m)
	}
	d.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].QueryID != ms[j].QueryID {
			return ms[i].QueryID < ms[j].QueryID
		}
		return ms[i].ObjectID < ms[j].ObjectID
	})
	var sb strings.Builder
	for _, m := range ms {
		fmt.Fprintf(&sb, "%d %d %d\n", m.QueryID, m.ObjectID, m.Subscriber)
	}
	return os.WriteFile(path, []byte(sb.String()), 0o644)
}

func runMerger(logger *log.Logger, listen string, once bool, out string) {
	var dump *matchDump
	opts := node.MergerOptions{Log: logger.Printf, Once: once}
	if out != "" {
		dump = newMatchDump()
		opts.OnMatch = dump.add
	}
	m, err := node.ListenAndServeMerger(context.Background(), listen, opts)
	if m != nil {
		delivered, dups := m.Counts()
		logger.Printf("merger: delivered %d matches (%d duplicates suppressed)", delivered, dups)
		if dump != nil {
			if werr := dump.write(out); werr != nil {
				logger.Fatal(werr)
			}
			logger.Printf("merger: match set written to %s", out)
		}
	}
	if err != nil && err != context.Canceled {
		logger.Fatal(err)
	}
}

type dispatcherConfig struct {
	workerAddrs []string
	mergerAddrs []string
	dispatchers int
	mu, ops     int
	seed        int64
	batch       int
	oracle      bool
	out         string
	// adjust enables the adaptive controller; with remote workers its
	// migrations cross the wire.
	adjust bool
	// objectsOnly drops query ops from the measured stream (the
	// migration-exactness contract: standing queries + live objects).
	objectsOnly bool
	// hotspot/hotBias/hotShift configure the skewed-hotspot object
	// workload (psgen's flags of the same names).
	hotspot  int
	hotBias  float64
	hotShift int
}

// runDispatcher embeds the coordinator: it builds the partitioning
// sample, connects the remote peers (unless -oracle), prewarms µ
// standing subscriptions, streams the seeded workload, drains end to
// end, and reports counts.
func runDispatcher(logger *log.Logger, dc dispatcherConfig) {
	spec := workload.TweetsUS()
	sample := workload.Sample(spec, workload.Q1, 3000, 600, dc.seed)
	var dump *matchDump
	cfg := core.Config{
		Dispatchers: dc.dispatchers,
		BatchSize:   dc.batch,
	}
	if dc.adjust {
		// An aggressive cadence sized for short CI runs: the hotspot
		// shift must be detected and spread within a few hundred
		// milliseconds of paced traffic.
		cfg.Adjust = core.AdjustConfig{
			Enabled:       true,
			Sigma:         1.2,
			Interval:      15 * time.Millisecond,
			Cooldown:      30 * time.Millisecond,
			SustainChecks: 1,
			MinWindowOps:  64,
			Seed:          dc.seed,
		}
	}
	if dc.oracle {
		if len(dc.workerAddrs) > 0 || len(dc.mergerAddrs) > 0 {
			logger.Fatal("-oracle runs fully in-process; drop -workers/-mergers")
		}
		cfg.Workers = 2
	} else {
		if len(dc.workerAddrs) == 0 {
			logger.Fatal("dispatcher needs -workers (or -oracle)")
		}
		// Every worker task lives on a peer: the dispatcher node routes,
		// it does not match.
		cfg.Workers = len(dc.workerAddrs)
		if err := cfg.ConnectRemoteWorkers(dc.workerAddrs, sample, wire.Backoff{}); err != nil {
			logger.Fatal(err)
		}
		// Likewise all merger tasks remote when merger peers are given;
		// without any, the dispatcher node mergers locally.
		cfg.Mergers = len(dc.mergerAddrs)
		if err := cfg.ConnectRemoteMergers(dc.mergerAddrs, sample, wire.Backoff{}); err != nil {
			logger.Fatal(err)
		}
		logger.Printf("dispatcher: %d remote workers, %d remote mergers", len(dc.workerAddrs), len(dc.mergerAddrs))
	}
	if dc.out != "" {
		if !dc.oracle && len(dc.mergerAddrs) > 0 {
			logger.Fatal("-out on the dispatcher needs local mergers; with remote mergers pass -out to the merger node")
		}
		dump = newMatchDump()
		cfg.OnMatch = dump.add
	}

	sys, err := core.New(cfg, sample)
	if err != nil {
		logger.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		logger.Fatal(err)
	}
	scfg := workload.StreamConfig{Mu: dc.mu, Seed: dc.seed}
	if dc.hotspot >= 0 {
		scfg.FocusBias = dc.hotBias
		scfg.FocusHotspot = dc.hotspot
	}
	st := workload.NewStream(spec, workload.Q1, scfg)
	warm := st.Prewarm(dc.mu)
	sys.SubmitAll(warm)
	if err := sys.Drain(int64(len(warm))); err != nil {
		logger.Fatal(err)
	}
	logger.Printf("dispatcher: %d standing subscriptions prewarmed", dc.mu)

	t0 := time.Now()
	// The stream is generated op-by-op so the focus can shift mid-run
	// (psgen's -hotspot-shift-every semantics).
	focused := dc.hotspot
	nextOp := func(i int) model.Op {
		if dc.hotspot >= 0 && dc.hotShift > 0 && i > 0 && i%dc.hotShift == 0 {
			focused++
			st.FocusHotspot(focused)
		}
		op := st.Next()
		for dc.objectsOnly && op.Kind != model.OpObject {
			op = st.Next()
		}
		return op
	}
	if dc.adjust {
		// With the controller on, publishing is paced in small bursts:
		// the detector needs wall-clock Interval windows of live traffic
		// to observe the shift and react, which an unpaced burst would
		// compress into a single window.
		const burstEvery = 3 * time.Millisecond
		const perBurst = 48
		for sent := 0; sent < dc.ops; {
			for j := 0; j < perBurst && sent < dc.ops; j++ {
				sys.Submit(nextOp(sent))
				sent++
			}
			if sent < dc.ops {
				time.Sleep(burstEvery)
			}
		}
	} else {
		// Static runs pre-generate and submit in one tight burst, exactly
		// like the pre-adjust dispatcher: interleaving generation with
		// submission would trickle ops into the spout and widen the
		// cross-dispatcher insert/object race window, making cluster and
		// oracle runs diverge on the mixed stream.
		stream := make([]model.Op, dc.ops)
		for i := range stream {
			stream[i] = nextOp(i)
		}
		sys.SubmitAll(stream)
	}
	if err := sys.Drain(int64(len(warm) + dc.ops)); err != nil {
		logger.Fatal(err)
	}
	elapsed := time.Since(t0)
	if dc.adjust {
		adj := sys.Snapshot().Adjust
		logger.Printf("dispatcher: adjust migrations=%d cells=%d queries=%d bytes=%d (checks=%d triggers=%d)",
			adj.Migrations, adj.CellsMoved, adj.QueriesMoved, adj.BytesMoved, adj.Checks, adj.Triggers)
	}

	delivered := sys.MatchCount()
	var remoteNote string
	if rd, rdup, err := sys.RemoteDelivered(); err != nil {
		logger.Fatal(err)
	} else if rd+rdup > 0 {
		delivered += rd
		remoteNote = fmt.Sprintf(" (%d on remote mergers)", rd)
	}
	logger.Printf("dispatcher: %d ops in %v (%.0f tuples/s), %d matches delivered%s",
		dc.ops, elapsed.Round(time.Millisecond), float64(dc.ops)/elapsed.Seconds(), delivered, remoteNote)

	if err := sys.Close(); err != nil {
		logger.Fatal(err)
	}
	if dump != nil {
		if err := dump.write(dc.out); err != nil {
			logger.Fatal(err)
		}
		logger.Printf("dispatcher: match set written to %s", dc.out)
	}
}
