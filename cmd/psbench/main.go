// Command psbench runs the paper-reproduction experiments and prints the
// rows/series of the corresponding figures (DESIGN.md §4 maps ids to
// figures).
//
// Usage:
//
//	psbench -list
//	psbench -exp fig7
//	psbench -exp all -quick
//	psbench -exp fig6a -ops 100000 -mu 20000 -workers 8
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"ps2stream/internal/bench"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id (fig6a..fig16, abl*) or 'all'")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		quick   = flag.Bool("quick", false, "use the quick (CI) scale")
		ops     = flag.Int("ops", 0, "override stream operations per run")
		mu      = flag.Int("mu", 0, "override scaled µ (standing query count)")
		workers = flag.Int("workers", 0, "override worker count")
		seed    = flag.Int64("seed", 0, "override generator seed")
		outDir  = flag.String("out", "", "also write each experiment's tables to <dir>/<id>.txt")
		jsonOut = flag.String("json", "", "also write all experiments' tables to one JSON file")
	)
	flag.Parse()

	if *list {
		for _, id := range bench.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "psbench: -exp required (or -list); e.g. psbench -exp fig7")
		os.Exit(2)
	}
	sc := bench.DefaultScale()
	if *quick {
		sc = bench.QuickScale()
	}
	if *ops > 0 {
		sc.Ops = *ops
	}
	if *mu > 0 {
		sc.Mu1 = *mu
	}
	if *workers > 0 {
		sc.Workers = *workers
	}
	if *seed != 0 {
		sc.Seed = *seed
	}

	ids := []string{*exp}
	if strings.EqualFold(*exp, "all") {
		ids = bench.ExperimentIDs()
	}
	exps := bench.Experiments()
	var report []jsonExperiment
	for _, id := range ids {
		runner, ok := exps[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "psbench: unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		tables := runner(sc)
		elapsed := time.Since(start)
		for _, t := range tables {
			t.Fprint(os.Stdout)
		}
		if *outDir != "" {
			if err := writeTables(*outDir, id, tables); err != nil {
				fmt.Fprintln(os.Stderr, "psbench:", err)
				os.Exit(1)
			}
		}
		if *jsonOut != "" {
			report = append(report, newJSONExperiment(id, tables, elapsed))
		}
		fmt.Printf("-- %s completed in %v --\n\n", id, elapsed.Round(time.Millisecond))
	}
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, sc, report); err != nil {
			fmt.Fprintln(os.Stderr, "psbench:", err)
			os.Exit(1)
		}
	}
}

// jsonExperiment is one experiment's result in the machine-readable
// report (baseline files like BENCH_topk.json).
type jsonExperiment struct {
	Experiment string        `json:"experiment"`
	ElapsedMS  int64         `json:"elapsed_ms"`
	Tables     []bench.Table `json:"tables"`
}

func newJSONExperiment(id string, tables []bench.Table, elapsed time.Duration) jsonExperiment {
	return jsonExperiment{Experiment: id, ElapsedMS: elapsed.Milliseconds(), Tables: tables}
}

func writeJSON(path string, sc bench.Scale, report []jsonExperiment) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(struct {
		Scale       bench.Scale      `json:"scale"`
		Experiments []jsonExperiment `json:"experiments"`
	}{Scale: sc, Experiments: report}); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeTables persists one experiment's tables as <dir>/<id>.txt.
func writeTables(dir, id string, tables []bench.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, id+".txt"))
	if err != nil {
		return err
	}
	for _, t := range tables {
		t.Fprint(f)
	}
	return f.Close()
}
