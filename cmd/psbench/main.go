// Command psbench runs the paper-reproduction experiments and prints the
// rows/series of the corresponding figures (DESIGN.md §4 maps ids to
// figures).
//
// Usage:
//
//	psbench -list
//	psbench -exp fig7
//	psbench -exp all -quick
//	psbench -exp fig6a -ops 100000 -mu 20000 -workers 8
//
// Compare mode gates a fresh -json report against a committed baseline
// (the CI perf smoke): every throughput and speedup value must reach at
// least (1 - tolerance) × the baseline, or psbench exits non-zero listing
// the regressions:
//
//	psbench -exp batch -quick -json new.json
//	psbench -compare BENCH_batch.json -against new.json -tolerance 0.35
//
// -min-wire-ratio additionally enforces an absolute floor on the
// candidate's wire experiment (tcp row speedup), independent of the
// baseline:
//
//	psbench -compare BENCH_wire.json -against new.json -min-wire-ratio 0.8
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"ps2stream/internal/bench"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id (fig6a..fig16, abl*) or 'all'")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		quick   = flag.Bool("quick", false, "use the quick (CI) scale")
		wireExp = flag.Bool("wire", false, "place all worker tasks behind loopback TCP where supported (adjust: migrations cross the wire)")
		ops     = flag.Int("ops", 0, "override stream operations per run")
		mu      = flag.Int("mu", 0, "override scaled µ (standing query count)")
		workers = flag.Int("workers", 0, "override worker count")
		seed    = flag.Int64("seed", 0, "override generator seed")
		outDir  = flag.String("out", "", "also write each experiment's tables to <dir>/<id>.txt")
		jsonOut = flag.String("json", "", "also write all experiments' tables to one JSON file")

		compare   = flag.String("compare", "", "baseline report (BENCH_*.json) to gate -against")
		against   = flag.String("against", "", "candidate report compared to -compare")
		tolerance = flag.Float64("tolerance", 0.35, "allowed fractional regression in compare mode")
		minRatio  = flag.Float64("min-wire-ratio", 0, "in compare mode, absolute floor for the candidate's wire tcp/inproc speedup (0 disables)")
	)
	flag.Parse()

	if *compare != "" || *against != "" {
		if *compare == "" || *against == "" {
			fmt.Fprintln(os.Stderr, "psbench: compare mode needs both -compare <baseline> and -against <candidate>")
			os.Exit(2)
		}
		os.Exit(runCompare(*compare, *against, *tolerance, *minRatio))
	}

	if *list {
		for _, id := range bench.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "psbench: -exp required (or -list); e.g. psbench -exp fig7")
		os.Exit(2)
	}
	sc := bench.DefaultScale()
	if *quick {
		sc = bench.QuickScale()
	}
	sc.Wire = *wireExp
	if *ops > 0 {
		sc.Ops = *ops
	}
	if *mu > 0 {
		sc.Mu1 = *mu
	}
	if *workers > 0 {
		sc.Workers = *workers
	}
	if *seed != 0 {
		sc.Seed = *seed
	}

	ids := []string{*exp}
	if strings.EqualFold(*exp, "all") {
		ids = bench.ExperimentIDs()
	}
	exps := bench.Experiments()
	var report []bench.ReportExperiment
	for _, id := range ids {
		runner, ok := exps[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "psbench: unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		tables := runner(sc)
		elapsed := time.Since(start)
		for _, t := range tables {
			t.Fprint(os.Stdout)
		}
		if *outDir != "" {
			if err := writeTables(*outDir, id, tables); err != nil {
				fmt.Fprintln(os.Stderr, "psbench:", err)
				os.Exit(1)
			}
		}
		if *jsonOut != "" {
			report = append(report, newJSONExperiment(id, tables, elapsed))
		}
		fmt.Printf("-- %s completed in %v --\n\n", id, elapsed.Round(time.Millisecond))
	}
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, sc, report); err != nil {
			fmt.Fprintln(os.Stderr, "psbench:", err)
			os.Exit(1)
		}
	}
}

// runCompare loads two -json reports and applies the tolerance gate —
// plus, when minRatio > 0, the absolute wire tcp/inproc floor on the
// candidate — returning the process exit code.
func runCompare(basePath, curPath string, tol, minRatio float64) int {
	baseData, err := os.ReadFile(basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "psbench:", err)
		return 1
	}
	curData, err := os.ReadFile(curPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "psbench:", err)
		return 1
	}
	base, err := bench.ParseReport(baseData)
	if err != nil {
		fmt.Fprintf(os.Stderr, "psbench: %s: %v\n", basePath, err)
		return 1
	}
	cur, err := bench.ParseReport(curData)
	if err != nil {
		fmt.Fprintf(os.Stderr, "psbench: %s: %v\n", curPath, err)
		return 1
	}
	regs, n, err := bench.CompareReports(base, cur, tol)
	if err != nil {
		fmt.Fprintln(os.Stderr, "psbench:", err)
		return 1
	}
	if len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "psbench: %d of %d gated metrics regressed beyond %.0f%% of %s:\n",
			len(regs), n, tol*100, basePath)
		for _, r := range regs {
			fmt.Fprintln(os.Stderr, "  "+r.String())
		}
		return 1
	}
	if minRatio > 0 {
		if err := bench.CheckWireRatio(cur, minRatio); err != nil {
			fmt.Fprintln(os.Stderr, "psbench:", err)
			return 1
		}
		fmt.Printf("psbench: wire tcp/inproc ratio meets the %.2f floor\n", minRatio)
	}
	fmt.Printf("psbench: %d gated metrics within %.0f%% of %s\n", n, tol*100, basePath)
	return 0
}

func newJSONExperiment(id string, tables []bench.Table, elapsed time.Duration) bench.ReportExperiment {
	return bench.ReportExperiment{Experiment: id, ElapsedMS: elapsed.Milliseconds(), Tables: tables}
}

func writeJSON(path string, sc bench.Scale, report []bench.ReportExperiment) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(bench.Report{Scale: sc, Experiments: report}); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeTables persists one experiment's tables as <dir>/<id>.txt.
func writeTables(dir, id string, tables []bench.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, id+".txt"))
	if err != nil {
		return err
	}
	for _, t := range tables {
		t.Fprint(f)
	}
	return f.Close()
}
