package main

import (
	"testing"

	"ps2stream/internal/geo"
	"ps2stream/internal/textutil"
)

func TestBuilderFor(t *testing.T) {
	for _, name := range []string{"", "hybrid", "frequency", "hypergraph", "metric", "grid", "kdtree", "rtree"} {
		b, err := builderFor(name)
		if err != nil || b == nil {
			t.Errorf("builderFor(%q) = %v, %v", name, b, err)
		}
	}
	if _, err := builderFor("voronoi"); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestIndexFor(t *testing.T) {
	bounds := geo.NewRect(0, 0, 10, 10)
	stats := textutil.NewStats()
	for _, name := range []string{"", "gi2"} {
		f, err := indexFor(name)
		if err != nil || f != nil { // nil factory = core's GI2 default
			t.Errorf("indexFor(%q) = %v, %v", name, f, err)
		}
	}
	for _, name := range []string{"rtree", "iqtree", "aptree"} {
		f, err := indexFor(name)
		if err != nil || f == nil {
			t.Fatalf("indexFor(%q) = %v, %v", name, f, err)
		}
		if ix := f(bounds, 8, stats); ix == nil {
			t.Errorf("indexFor(%q) factory returned nil", name)
		}
	}
	if _, err := indexFor("btree"); err == nil {
		t.Error("unknown index accepted")
	}
}
