// Command psrun replays a JSONL workload (see psgen) through a PS2Stream
// topology and reports throughput, latency, match counts, memory, and any
// migrations, i.e. a single-shot deployment of the system.
//
// Usage:
//
//	psgen -dataset us -kind q1 -mu 10000 -ops 120000 | psrun -strategy hybrid
//	psrun -in workload.jsonl -strategy kdtree -workers 8 -adjust
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"ps2stream/internal/core"
	"ps2stream/internal/geo"
	"ps2stream/internal/hybrid"
	"ps2stream/internal/load"
	"ps2stream/internal/model"
	"ps2stream/internal/partition"
	"ps2stream/internal/qindex"
	"ps2stream/internal/snapshot"
	"ps2stream/internal/textutil"
	"ps2stream/internal/workload"
)

func builderFor(name string) (partition.Builder, error) {
	if name == "hybrid" || name == "" {
		return hybrid.Builder{}, nil
	}
	if b, ok := partition.Builders()[name]; ok {
		return b, nil
	}
	return nil, fmt.Errorf("unknown strategy %q", name)
}

func indexFor(name string) (core.IndexFactory, error) {
	switch name {
	case "gi2", "":
		return nil, nil // core default
	case "rtree":
		return func(_ geo.Rect, _ int, _ *textutil.Stats) qindex.Index {
			return qindex.NewRTree(0)
		}, nil
	case "iqtree":
		return func(bounds geo.Rect, _ int, stats *textutil.Stats) qindex.Index {
			return qindex.NewIQTree(bounds, stats, 0, 0)
		}, nil
	case "aptree":
		return func(bounds geo.Rect, _ int, stats *textutil.Stats) qindex.Index {
			return qindex.NewAPTree(bounds, stats, 0, 0, 0)
		}, nil
	default:
		return nil, fmt.Errorf("unknown worker index %q", name)
	}
}

func main() {
	var (
		in          = flag.String("in", "-", "input JSONL file ('-' = stdin)")
		strategy    = flag.String("strategy", "hybrid", "distribution strategy: hybrid|frequency|hypergraph|metric|grid|kdtree|rtree")
		index       = flag.String("index", "gi2", "worker index: gi2|rtree|iqtree|aptree")
		workers     = flag.Int("workers", 8, "worker tasks")
		dispatchers = flag.Int("dispatchers", 4, "dispatcher tasks")
		sampleN     = flag.Int("sample", 20000, "ops consumed as the partitioning sample")
		adjust      = flag.Bool("adjust", false, "enable dynamic load adjustment (hybrid only)")
		quiet       = flag.Bool("quiet", false, "suppress per-match output counting")
		checkpoint  = flag.String("checkpoint", "", "write a snapshot of the live subscriptions here after the replay")
		restore     = flag.String("restore", "", "prime the system from this snapshot before the replay")
	)
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	dec := json.NewDecoder(bufio.NewReaderSize(r, 1<<20))

	// First pass: buffer the sample prefix to fit the strategy.
	var ops []model.Op
	var sampleObjs []*model.Object
	var sampleQrys []*model.Query
	bounds := geo.Rect{}
	first := true
	for len(ops) < *sampleN {
		var j workload.JSONOp
		if err := dec.Decode(&j); err == io.EOF {
			break
		} else if err != nil {
			fatal(err)
		}
		op, err := workload.DecodeOp(j)
		if err != nil {
			fatal(err)
		}
		ops = append(ops, op)
		switch op.Kind {
		case model.OpObject:
			sampleObjs = append(sampleObjs, op.Obj)
			p := geo.Rect{Min: op.Obj.Loc, Max: op.Obj.Loc}
			if first {
				bounds, first = p, false
			} else {
				bounds = bounds.Union(p)
			}
		case model.OpInsert:
			sampleQrys = append(sampleQrys, op.Query)
			if first {
				bounds, first = op.Query.Region, false
			} else {
				bounds = bounds.Union(op.Query.Region)
			}
		}
	}
	if first {
		fatal(fmt.Errorf("empty workload"))
	}
	b, err := builderFor(*strategy)
	if err != nil {
		fatal(err)
	}
	sample := partition.NewSample(sampleObjs, sampleQrys, bounds.Expand(0.5), load.DefaultCosts)
	ixf, err := indexFor(*index)
	if err != nil {
		fatal(err)
	}
	cfg := core.Config{
		Dispatchers:  *dispatchers,
		Workers:      *workers,
		Builder:      b,
		IndexFactory: ixf,
	}
	if *adjust {
		cfg.Adjust = core.AdjustConfig{Enabled: true}
	}
	if !*quiet {
		cfg.OnMatch = func(model.Match) {}
	}
	sys, err := core.New(cfg, sample)
	if err != nil {
		fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		fatal(err)
	}

	restored := 0
	if *restore != "" {
		f, err := os.Open(*restore)
		if err != nil {
			fatal(err)
		}
		_, qs, err := snapshot.Read(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		for _, q := range qs {
			sys.Submit(model.Op{Kind: model.OpInsert, Query: q})
		}
		restored = len(qs)
	}

	start := time.Now()
	n := 0
	submit := func(op model.Op) {
		sys.Submit(op)
		n++
	}
	for _, op := range ops {
		submit(op)
	}
	for {
		var j workload.JSONOp
		if err := dec.Decode(&j); err == io.EOF {
			break
		} else if err != nil {
			fatal(err)
		}
		op, err := workload.DecodeOp(j)
		if err != nil {
			fatal(err)
		}
		submit(op)
	}
	if err := sys.Close(); err != nil {
		fatal(err)
	}
	el := time.Since(start)

	if *checkpoint != "" {
		f, err := os.Create(*checkpoint)
		if err != nil {
			fatal(err)
		}
		live := sys.LiveQueries()
		if err := snapshot.Write(f, sys.Bounds(), live); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("checkpoint:      %d live subscriptions -> %s\n", len(live), *checkpoint)
	}

	snap := sys.Snapshot()
	fmt.Printf("strategy:        %s\n", sys.Assignment().Name())
	fmt.Printf("worker index:    %s\n", *index)
	if restored > 0 {
		fmt.Printf("restored:        %d subscriptions\n", restored)
	}
	fmt.Printf("tuples:          %d in %v\n", n, el.Round(time.Millisecond))
	fmt.Printf("throughput:      %.0f tuples/s\n", float64(n)/el.Seconds())
	fmt.Printf("matches:         %d (dups removed: %d)\n", snap.Matches, snap.Duplicates)
	fmt.Printf("discarded:       %d objects with no live keyword\n", snap.Discarded)
	fmt.Printf("latency:         mean=%v p50=%v p99=%v\n", snap.Latency.Mean, snap.Latency.P50, snap.Latency.P99)
	fmt.Printf("dispatcher mem:  %d bytes\n", snap.DispatcherBytes)
	var wsum int64
	for _, wb := range snap.WorkerBytes {
		wsum += wb
	}
	fmt.Printf("worker mem:      %d bytes total across %d workers\n", wsum, len(snap.WorkerBytes))
	if len(snap.Migrations) > 0 {
		var bytes int64
		for _, m := range snap.Migrations {
			bytes += m.Bytes
		}
		fmt.Printf("migrations:      %d (total %d bytes moved)\n", len(snap.Migrations), bytes)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "psrun:", err)
	os.Exit(1)
}
