// Command pssnap inspects a PS2Stream checkpoint (see ps2stream.System
// Checkpoint, psrun -checkpoint): it validates the stream and summarises
// the subscription population — counts, expression shapes, keyword and
// region statistics — so an operator can sanity-check a snapshot before
// restoring it.
//
// Usage:
//
//	pssnap -in deploy.snap
//	psrun -in w.jsonl -checkpoint /dev/stdout | pssnap -verify
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"ps2stream/internal/model"
	"ps2stream/internal/snapshot"
	"ps2stream/internal/textutil"
)

func main() {
	var (
		in     = flag.String("in", "-", "snapshot file ('-' = stdin)")
		verify = flag.Bool("verify", false, "validate only; exit status reports the result")
		top    = flag.Int("top", 10, "how many of the most frequent keywords to list")
	)
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	h, qs, err := snapshot.Read(bufio.NewReaderSize(r, 1<<20))
	if err != nil {
		fatal(err)
	}
	if *verify {
		fmt.Printf("ok: %d subscriptions, format v%d\n", len(qs), h.Version)
		return
	}

	fmt.Printf("format:        v%d\n", h.Version)
	fmt.Printf("bounds:        %v\n", h.Bounds)
	fmt.Printf("subscriptions: %d\n", len(qs))
	if len(qs) == 0 {
		return
	}

	var andQ, orQ, mixedQ, sizeBytes int
	keywords := 0
	stats := textutil.NewStats()
	subscribers := map[uint64]struct{}{}
	var areas []float64
	union := qs[0].Region
	for _, q := range qs {
		sizeBytes += q.SizeBytes()
		subscribers[q.Subscriber] = struct{}{}
		switch classify(q) {
		case "and":
			andQ++
		case "or":
			orQ++
		default:
			mixedQ++
		}
		for _, t := range q.Expr.Terms() {
			keywords++
			stats.Add(t)
		}
		areas = append(areas, q.Region.Area())
		union = union.Union(q.Region)
	}
	sort.Float64s(areas)
	fmt.Printf("subscribers:   %d distinct\n", len(subscribers))
	fmt.Printf("state size:    %d bytes serialised query state\n", sizeBytes)
	fmt.Printf("expressions:   %d AND, %d OR, %d mixed; %.2f keywords/query (%d distinct)\n",
		andQ, orQ, mixedQ, float64(keywords)/float64(len(qs)), stats.DistinctTerms())
	fmt.Printf("regions:       area p50=%.4f p95=%.4f deg², union %v\n",
		areas[len(areas)/2], areas[len(areas)*95/100], union)
	if !h.Bounds.ContainsRect(union) {
		fmt.Printf("warning:       some regions extend beyond the snapshot bounds\n")
	}
	fmt.Printf("top keywords:\n")
	for _, t := range stats.TopTerms(*top) {
		fmt.Printf("  %6d  %s\n", stats.Count(t), t)
	}
}

// classify reports whether the expression is a pure conjunction, a pure
// disjunction of single terms, or a mixed DNF.
func classify(q *model.Query) string {
	if len(q.Expr.Conj) == 1 {
		return "and"
	}
	for _, c := range q.Expr.Conj {
		if len(c) != 1 {
			return "mixed"
		}
	}
	return "or"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pssnap:", err)
	os.Exit(1)
}
