package main

import (
	"testing"

	"ps2stream/internal/geo"
	"ps2stream/internal/model"
)

func TestClassify(t *testing.T) {
	r := geo.NewRect(0, 0, 1, 1)
	cases := []struct {
		name string
		q    *model.Query
		want string
	}{
		{"single term", &model.Query{Expr: model.And("a"), Region: r}, "and"},
		{"conjunction", &model.Query{Expr: model.And("a", "b", "c"), Region: r}, "and"},
		{"disjunction", &model.Query{Expr: model.Or("a", "b"), Region: r}, "or"},
		{"mixed DNF", &model.Query{Expr: model.Expr{Conj: [][]string{{"a", "b"}, {"c"}}}, Region: r}, "mixed"},
	}
	for _, tc := range cases {
		if got := classify(tc.q); got != tc.want {
			t.Errorf("%s: classify = %q, want %q", tc.name, got, tc.want)
		}
	}
}
