// Command psgen generates synthetic spatio-textual workloads (the
// TWEETS-US / TWEETS-UK equivalents of §VI-A) as JSON Lines, one operation
// per line, suitable for psrun or external tooling.
//
// Usage:
//
//	psgen -dataset us -kind q1 -mu 10000 -ops 120000 > workload.jsonl
//	psgen -dataset uk -kind q3 -prewarm-only -mu 5000 > queries.jsonl
//	psgen -dataset us -kind q1 -topk 0.3 -topk-k 10 -topk-window 1m > ranked.jsonl
//
// The skewed-hotspot workload of the adaptive-adjustment experiments
// concentrates object traffic on one hotspot cluster and optionally shifts
// it mid-stream (queries stay unbiased):
//
//	psgen -dataset us -hotspot 0 -hotspot-bias 0.85 -hotspot-shift-every 40000 > shifting.jsonl
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ps2stream/internal/workload"
)

func main() {
	var (
		dataset    = flag.String("dataset", "us", "dataset: us | uk")
		kind       = flag.String("kind", "q1", "query family: q1 | q2 | q3")
		mu         = flag.Int("mu", 10000, "standing query count µ")
		ops        = flag.Int("ops", 120000, "stream operations after prewarm")
		seed       = flag.Int64("seed", 2017, "generator seed")
		prewarm    = flag.Bool("prewarm-only", false, "emit only the µ prewarm insertions")
		topk       = flag.Float64("topk", 0, "fraction of subscriptions that are sliding-window top-k (0..1)")
		topkK      = flag.Int("topk-k", 10, "k of generated top-k subscriptions")
		topkWindow = flag.Duration("topk-window", time.Minute, "window of generated top-k subscriptions")
		hotspot    = flag.Int("hotspot", -1, "focus object traffic on this hotspot cluster index (-1 off)")
		hotBias    = flag.Float64("hotspot-bias", 0.85, "fraction of objects concentrated on the focused hotspot")
		hotShift   = flag.Int("hotspot-shift-every", 0, "shift the focus to the next hotspot every N stream ops (0 never)")
	)
	flag.Parse()

	var spec workload.DatasetSpec
	switch strings.ToLower(*dataset) {
	case "us":
		spec = workload.TweetsUS()
	case "uk":
		spec = workload.TweetsUK()
	default:
		fmt.Fprintf(os.Stderr, "psgen: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}
	var qk workload.QueryKind
	switch strings.ToLower(*kind) {
	case "q1":
		qk = workload.Q1
	case "q2":
		qk = workload.Q2
	case "q3":
		qk = workload.Q3
	default:
		fmt.Fprintf(os.Stderr, "psgen: unknown query kind %q\n", *kind)
		os.Exit(2)
	}

	scfg := workload.StreamConfig{
		Mu: *mu, Seed: *seed,
		TopKFraction: *topk, TopKK: *topkK, TopKWindow: *topkWindow,
	}
	if *hotspot >= 0 {
		scfg.FocusBias = *hotBias
		scfg.FocusHotspot = *hotspot
	}
	st := workload.NewStream(spec, qk, scfg)
	w := bufio.NewWriterSize(os.Stdout, 1<<20)
	defer w.Flush()
	enc := json.NewEncoder(w)
	for _, op := range st.Prewarm(*mu) {
		if err := enc.Encode(workload.EncodeOp(op)); err != nil {
			fmt.Fprintln(os.Stderr, "psgen:", err)
			os.Exit(1)
		}
	}
	if *prewarm {
		return
	}
	focused := *hotspot
	for i := 0; i < *ops; i++ {
		if *hotspot >= 0 && *hotShift > 0 && i > 0 && i%*hotShift == 0 {
			focused++
			st.FocusHotspot(focused)
		}
		if err := enc.Encode(workload.EncodeOp(st.Next())); err != nil {
			fmt.Fprintln(os.Stderr, "psgen:", err)
			os.Exit(1)
		}
	}
}
