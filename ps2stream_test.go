package ps2stream

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

var usRegion = NewRegion(-125, 24, -66, 49)

type collector struct {
	mu sync.Mutex
	ms []Match
}

func (c *collector) add(m Match) {
	c.mu.Lock()
	c.ms = append(c.ms, m)
	c.mu.Unlock()
}

func (c *collector) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.ms)
}

func TestOpenPublishSubscribe(t *testing.T) {
	col := &collector{}
	sys, err := Open(Options{
		Region:  usRegion,
		Workers: 4, Dispatchers: 1,
		OnMatch: col.add,
	})
	if err != nil {
		t.Fatal(err)
	}
	sub := Subscription{
		ID:         1,
		Query:      "coffee AND brooklyn",
		Region:     RegionAround(40.7, -73.95, 20, 20),
		Subscriber: 42,
	}
	if err := sys.Subscribe(sub); err != nil {
		t.Fatal(err)
	}
	sys.Publish(Message{ID: 10, Text: "Best coffee in Brooklyn!", Lat: 40.71, Lon: -73.95})
	sys.Publish(Message{ID: 11, Text: "coffee in seattle", Lat: 47.6, Lon: -122.3})
	sys.Publish(Message{ID: 12, Text: "brooklyn pizza", Lat: 40.71, Lon: -73.95})
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	if col.len() != 1 {
		t.Fatalf("got %d matches, want 1 (%+v)", col.len(), col.ms)
	}
	m := col.ms[0]
	if m.SubscriptionID != 1 || m.MessageID != 10 || m.Subscriber != 42 {
		t.Errorf("match = %+v", m)
	}
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	col := &collector{}
	sys, err := Open(Options{Region: usRegion, Workers: 2, Dispatchers: 1, OnMatch: col.add})
	if err != nil {
		t.Fatal(err)
	}
	sub := Subscription{ID: 5, Query: "storm", Region: RegionAround(35, -90, 100, 100)}
	if err := sys.Subscribe(sub); err != nil {
		t.Fatal(err)
	}
	sys.Publish(Message{ID: 1, Text: "storm warning", Lat: 35, Lon: -90})
	if err := sys.Unsubscribe(sub); err != nil {
		t.Fatal(err)
	}
	sys.Publish(Message{ID: 2, Text: "storm again", Lat: 35, Lon: -90})
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	if col.len() != 1 {
		t.Fatalf("got %d matches, want 1", col.len())
	}
}

func TestOrQueries(t *testing.T) {
	col := &collector{}
	sys, err := Open(Options{Region: usRegion, Workers: 2, Dispatchers: 1, OnMatch: col.add})
	if err != nil {
		t.Fatal(err)
	}
	sys.Subscribe(Subscription{ID: 1, Query: "kobe OR lebron", Region: RegionAround(34, -118, 200, 200)})
	sys.Publish(Message{ID: 1, Text: "kobe retired", Lat: 34, Lon: -118})
	sys.Publish(Message{ID: 2, Text: "lebron dunks", Lat: 34, Lon: -118})
	sys.Publish(Message{ID: 3, Text: "kobe and lebron", Lat: 34, Lon: -118})
	sys.Publish(Message{ID: 4, Text: "curry shoots", Lat: 34, Lon: -118})
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	if col.len() != 3 {
		t.Fatalf("got %d matches, want 3", col.len())
	}
}

func TestInvalidInputs(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Error("Open with empty region should fail")
	}
	if _, err := Open(Options{Region: usRegion, Strategy: "bogus"}); err == nil {
		t.Error("unknown strategy accepted")
	}
	sys, err := Open(Options{Region: usRegion, Workers: 2, Dispatchers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := sys.Subscribe(Subscription{ID: 1, Query: ""}); err == nil {
		t.Error("empty query accepted")
	}
	if err := sys.Subscribe(Subscription{ID: 1, Query: "a AND"}); err == nil {
		t.Error("malformed query accepted")
	}
}

func TestAllStrategiesViaPublicAPI(t *testing.T) {
	for _, st := range []Strategy{
		StrategyHybrid, StrategyFrequency, StrategyHypergraph,
		StrategyMetric, StrategyGrid, StrategyKDTree, StrategyRTree,
	} {
		t.Run(string(st), func(t *testing.T) {
			col := &collector{}
			// Seed so text strategies have statistics.
			var seedMsgs []Message
			var seedSubs []Subscription
			for i := 0; i < 50; i++ {
				seedMsgs = append(seedMsgs, Message{
					ID: uint64(i), Text: fmt.Sprintf("topic%d news update", i%7),
					Lat: 30 + float64(i%10), Lon: -120 + float64(i%20),
				})
				seedSubs = append(seedSubs, Subscription{
					ID: uint64(i + 1), Query: fmt.Sprintf("topic%d", i%7),
					Region: RegionAround(30+float64(i%10), -120+float64(i%20), 50, 50),
				})
			}
			sys, err := Open(Options{
				Region: usRegion, Workers: 4, Dispatchers: 1,
				Strategy: st, OnMatch: col.add,
				SeedMessages: seedMsgs, SeedSubscriptions: seedSubs,
			})
			if err != nil {
				t.Fatal(err)
			}
			sys.Subscribe(Subscription{ID: 100, Query: "topic3", Region: RegionAround(33, -117, 100, 100)})
			sys.Publish(Message{ID: 200, Text: "topic3 event", Lat: 33, Lon: -117})
			if err := sys.Close(); err != nil {
				t.Fatal(err)
			}
			if col.len() != 1 {
				t.Errorf("%s: got %d matches, want 1", st, col.len())
			}
		})
	}
}

func TestAllWorkerIndexesViaPublicAPI(t *testing.T) {
	for _, wi := range []WorkerIndex{
		WorkerIndexGI2, WorkerIndexRTree, WorkerIndexIQTree, WorkerIndexAPTree,
	} {
		t.Run(string(wi), func(t *testing.T) {
			col := &collector{}
			sys, err := Open(Options{
				Region: usRegion, Workers: 4, Dispatchers: 1,
				WorkerIndex: wi, OnMatch: col.add,
			})
			if err != nil {
				t.Fatal(err)
			}
			sub := Subscription{ID: 1, Query: "quake OR tremor", Region: RegionAround(37, -122, 80, 80)}
			if err := sys.Subscribe(sub); err != nil {
				t.Fatal(err)
			}
			sys.Publish(Message{ID: 1, Text: "quake felt downtown", Lat: 37, Lon: -122})
			sys.Publish(Message{ID: 2, Text: "sunny day", Lat: 37, Lon: -122})
			if err := sys.Unsubscribe(sub); err != nil {
				t.Fatal(err)
			}
			sys.Publish(Message{ID: 3, Text: "tremor reported", Lat: 37, Lon: -122})
			if err := sys.Close(); err != nil {
				t.Fatal(err)
			}
			if col.len() != 1 {
				t.Errorf("%s: got %d matches, want 1 (%+v)", wi, col.len(), col.ms)
			}
		})
	}
}

func TestWorkerIndexValidation(t *testing.T) {
	if _, err := Open(Options{Region: usRegion, WorkerIndex: "btree"}); err == nil {
		t.Error("unknown worker index accepted")
	}
	// Dynamic adjustment migrates gridt cells: GI2 only.
	if _, err := Open(Options{
		Region: usRegion, WorkerIndex: WorkerIndexIQTree, DynamicAdjustment: true,
	}); err == nil {
		t.Error("adjustment with IQ-tree index should fail")
	}
}

func TestStatsAndFlush(t *testing.T) {
	sys, err := Open(Options{Region: usRegion, Workers: 2, Dispatchers: 1})
	if err != nil {
		t.Fatal(err)
	}
	sys.Subscribe(Subscription{ID: 1, Query: "x", Region: RegionAround(35, -90, 10, 10)})
	for i := 0; i < 100; i++ {
		sys.Publish(Message{ID: uint64(i), Text: "x y z", Lat: 35, Lon: -90})
	}
	sys.Flush()
	st := sys.Stats()
	if st.Processed != 101 {
		t.Errorf("Processed = %d, want 101", st.Processed)
	}
	if st.Matches != 100 {
		t.Errorf("Matches = %d, want 100", st.Matches)
	}
	total := 0
	for _, c := range st.WorkerQueries {
		total += c
	}
	if total == 0 {
		t.Error("no worker holds the subscription")
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err == nil {
		t.Error("double close should fail")
	}
}

func TestDynamicAdjustmentOption(t *testing.T) {
	sys, err := Open(Options{
		Region: usRegion, Workers: 4, Dispatchers: 1,
		DynamicAdjustment: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	// Adjustment demands the hybrid strategy.
	if _, err := Open(Options{
		Region: usRegion, Strategy: StrategyGrid, DynamicAdjustment: true,
	}); err == nil {
		t.Error("adjustment with grid strategy should fail")
	}
}

func TestAdjustOptionsAndAdjustNow(t *testing.T) {
	// Manual mode: controller off, AdjustNow on demand. Subscriptions
	// spread over two areas, traffic concentrated on one of them.
	sys, err := Open(Options{
		Region: usRegion, Workers: 4, Dispatchers: 1,
		Adjust: AdjustOptions{Theta: 1.05, Cooldown: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		lat, lon := 33+rng.Float64()*14, -120+rng.Float64()*50
		if err := sys.Subscribe(Subscription{
			ID:     uint64(i + 1),
			Query:  fmt.Sprintf("hot%02d", i%30),
			Region: RegionAround(lat, lon, 120, 120),
		}); err != nil {
			t.Fatal(err)
		}
	}
	sys.Flush()
	for i := 0; i < 3000; i++ {
		sys.Publish(Message{
			ID:   uint64(1000 + i),
			Text: fmt.Sprintf("hot%02d hot%02d", i%30, (i+7)%30),
			Lat:  40.7 + rng.NormFloat64()*0.3,
			Lon:  -74 + rng.NormFloat64()*0.3,
		})
	}
	sys.Flush()
	moved := sys.AdjustNow()
	if moved == 0 {
		t.Fatal("AdjustNow did not migrate under a one-metro burst")
	}
	st := sys.Stats()
	if st.Adjust.Auto {
		t.Error("Stats.Adjust.Auto true without Adjust.Auto")
	}
	if st.Adjust.ManualTriggers == 0 || st.Adjust.Migrations != moved {
		t.Errorf("controller stats inconsistent with AdjustNow: %+v vs %d", st.Adjust, moved)
	}
	// One smoothed load per routing slot — derived from the reported
	// topology, not a constant, so spare slots don't invalidate it.
	if st.Adjust.Epoch == 0 || len(st.Adjust.EWMALoads) != len(st.WorkerQueries) {
		t.Errorf("controller stats not populated: %+v", st.Adjust)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	// Auto mode surfaces in Stats; non-hybrid strategies still reject it.
	sys2, err := Open(Options{Region: usRegion, Adjust: AdjustOptions{Auto: true}})
	if err != nil {
		t.Fatal(err)
	}
	if !sys2.Stats().Adjust.Auto {
		t.Error("Stats.Adjust.Auto false with Adjust.Auto set")
	}
	if err := sys2.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{
		Region: usRegion, Strategy: StrategyGrid, Adjust: AdjustOptions{Auto: true},
	}); err == nil {
		t.Error("Adjust.Auto with grid strategy should fail")
	}
}

func TestCheckpointRestore(t *testing.T) {
	// Build a system with a mixed subscription population.
	sys, err := Open(Options{Region: usRegion, Workers: 4, Dispatchers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		q := fmt.Sprintf("topic%d", i%5)
		if i%2 == 0 {
			q += fmt.Sprintf(" AND extra%d", i%3)
		}
		if err := sys.Subscribe(Subscription{
			ID: uint64(i + 1), Query: q,
			Region:     RegionAround(30+float64(i%15), -110+float64(i%30), 60, 60),
			Subscriber: uint64(i % 7),
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Drop a few so the checkpoint reflects deletions.
	for i := 0; i < 10; i++ {
		q := fmt.Sprintf("topic%d", i%5)
		if i%2 == 0 {
			q += fmt.Sprintf(" AND extra%d", i%3)
		}
		if err := sys.Unsubscribe(Subscription{
			ID: uint64(i + 1), Query: q,
			Region: RegionAround(30+float64(i%15), -110+float64(i%30), 60, 60),
		}); err != nil {
			t.Fatal(err)
		}
	}
	sys.Flush()
	var buf bytes.Buffer
	if err := sys.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	// Restore into a fresh system (different worker count and index) and
	// verify delivery behaviour carried over.
	col := &collector{}
	sys2, err := Open(Options{
		Region: usRegion, Workers: 3, Dispatchers: 1,
		WorkerIndex: WorkerIndexIQTree, OnMatch: col.add,
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := sys2.Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 30 {
		t.Errorf("restored %d subscriptions, want 30", n)
	}
	sys2.Flush()
	// Subscription 11 ("topic0") survived; subscription 1 was dropped
	// pre-checkpoint, so only one of the two regions can fire.
	sys2.Publish(Message{ID: 900, Text: "topic0 extra1 event", Lat: 30 + 10, Lon: -110 + 10}) // sub 11's region+terms
	sys2.Flush()
	if err := sys2.Close(); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range col.ms {
		if m.SubscriptionID == 11 && m.MessageID == 900 {
			found = true
		}
		if m.SubscriptionID <= 10 {
			t.Errorf("deleted subscription %d fired after restore", m.SubscriptionID)
		}
	}
	if !found {
		t.Error("restored subscription 11 did not fire")
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	sys, err := Open(Options{Region: usRegion, Workers: 2, Dispatchers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if _, err := sys.Restore(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("garbage snapshot accepted")
	}
}

func TestRegionHelpers(t *testing.T) {
	r := NewRegion(-10, 40, 10, 50)
	if r.MinLon != -10 || r.MaxLat != 50 {
		t.Errorf("NewRegion = %+v", r)
	}
	// Swapped corners normalise.
	r2 := NewRegion(10, 50, -10, 40)
	if r2 != r {
		t.Errorf("corner order not normalised: %+v vs %+v", r2, r)
	}
	ra := RegionAround(40, -74, 10, 10)
	if ra.MinLat >= ra.MaxLat || ra.MinLon >= ra.MaxLon {
		t.Errorf("RegionAround degenerate: %+v", ra)
	}
	c := ra.rect().Center()
	if c.Y < 39.9 || c.Y > 40.1 {
		t.Errorf("RegionAround center lat = %v", c.Y)
	}
}

func TestSubscriptionCountAndBalanceStats(t *testing.T) {
	sys, err := Open(Options{Region: usRegion, Workers: 4, Dispatchers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	for i := uint64(1); i <= 20; i++ {
		if err := sys.Subscribe(Subscription{
			ID: i, Query: "news",
			Region: RegionAround(30+float64(i), -100, 30, 30),
		}); err != nil {
			t.Fatal(err)
		}
	}
	sys.Flush()
	if n := sys.SubscriptionCount(); n != 20 {
		t.Errorf("SubscriptionCount = %d, want 20", n)
	}
	for i := 0; i < 50; i++ {
		sys.Publish(Message{ID: uint64(100 + i), Text: "news flash", Lat: 35, Lon: -100})
	}
	sys.Flush()
	st := sys.Stats()
	// One load entry per routing slot, matching the reported topology
	// rather than the configured constant (spare slots count too).
	if len(st.WorkerLoads) != len(st.WorkerQueries) {
		t.Fatalf("WorkerLoads = %v with %d worker slots", st.WorkerLoads, len(st.WorkerQueries))
	}
	var total float64
	for _, l := range st.WorkerLoads {
		total += l
	}
	if total <= 0 {
		t.Error("no worker load recorded")
	}
	if st.BalanceFactor < 1 && st.BalanceFactor != 0 {
		t.Errorf("BalanceFactor = %v, want >= 1 or 0", st.BalanceFactor)
	}
}

func TestRepartitionViaPublicAPI(t *testing.T) {
	col := &collector{}
	sys, err := Open(Options{Region: usRegion, Workers: 4, Dispatchers: 1, OnMatch: col.add})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sub := Subscription{ID: 1, Query: "alert", Region: RegionAround(40, -100, 60, 60)}
	if err := sys.Subscribe(sub); err != nil {
		t.Fatal(err)
	}
	sys.Flush()

	// Drift: fit the strategy to a new sample.
	var msgs []Message
	var subs []Subscription
	for i := 0; i < 40; i++ {
		msgs = append(msgs, Message{
			ID: uint64(i), Text: fmt.Sprintf("alert zone%d", i%4),
			Lat: 30 + float64(i%8), Lon: -110 + float64(i%12),
		})
		subs = append(subs, Subscription{
			ID: uint64(i + 10), Query: fmt.Sprintf("zone%d", i%4),
			Region: RegionAround(30+float64(i%8), -110+float64(i%12), 40, 40),
		})
	}
	if err := sys.Repartition(msgs, subs); err != nil {
		t.Fatal(err)
	}
	// A second repartition while one is in flight must fail.
	if err := sys.Repartition(msgs, subs); err == nil {
		t.Error("overlapping repartition accepted")
	}
	// Old subscription still matches during the dual-routing phase.
	sys.Publish(Message{ID: 100, Text: "alert issued", Lat: 40, Lon: -100})
	sys.Flush()
	if moved := sys.FinishRepartition(); moved < 0 {
		t.Errorf("FinishRepartition = %d", moved)
	}
	if n := sys.FinishRepartition(); n != 0 {
		t.Errorf("second FinishRepartition = %d, want 0", n)
	}
	// And still matches after the transition completes.
	sys.Publish(Message{ID: 101, Text: "alert again", Lat: 40, Lon: -100})
	sys.Flush()
	found := map[uint64]bool{}
	col.mu.Lock()
	for _, m := range col.ms {
		if m.SubscriptionID == 1 {
			found[m.MessageID] = true
		}
	}
	col.mu.Unlock()
	if !found[100] || !found[101] {
		t.Errorf("matches across repartition = %v, want {100,101}", found)
	}
	// Malformed sample subscriptions surface as errors.
	if err := sys.Repartition(nil, []Subscription{{ID: 9, Query: "a AND"}}); err == nil {
		t.Error("malformed repartition sample accepted")
	}
}
