package ps2stream_test

import (
	"bytes"
	"fmt"
	"log"

	"ps2stream"
)

// Open a system over the continental USA, register one subscription, and
// publish messages; only the message satisfying both the keyword
// expression and the region is delivered.
func Example() {
	delivered := make(chan ps2stream.Match, 1)
	sys, err := ps2stream.Open(ps2stream.Options{
		Region:  ps2stream.NewRegion(-125, 24, -66, 49),
		Workers: 4,
		OnMatch: func(m ps2stream.Match) { delivered <- m },
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	sys.Subscribe(ps2stream.Subscription{
		ID:     7,
		Query:  "coffee AND brooklyn",
		Region: ps2stream.RegionAround(40.70, -73.95, 10, 10),
	})
	sys.Flush() // registration is asynchronous

	sys.Publish(ps2stream.Message{ID: 1, Text: "best coffee in brooklyn", Lat: 40.71, Lon: -73.95})
	sys.Publish(ps2stream.Message{ID: 2, Text: "coffee in seattle", Lat: 47.61, Lon: -122.33})

	m := <-delivered
	fmt.Printf("message %d matched subscription %d\n", m.MessageID, m.SubscriptionID)
	// Output: message 1 matched subscription 7
}

// Snapshot the live subscription population and prime a replacement
// system from it — the replacement may use a different worker count,
// distribution strategy, or worker index.
func ExampleSystem_Checkpoint() {
	region := ps2stream.NewRegion(-125, 24, -66, 49)
	sys, err := ps2stream.Open(ps2stream.Options{Region: region, Workers: 8})
	if err != nil {
		log.Fatal(err)
	}
	for i := uint64(1); i <= 5; i++ {
		sys.Subscribe(ps2stream.Subscription{
			ID:     i,
			Query:  "storm OR flood",
			Region: ps2stream.RegionAround(30+float64(i), -90, 50, 50),
		})
	}
	sys.Flush()

	var snap bytes.Buffer
	if err := sys.Checkpoint(&snap); err != nil {
		log.Fatal(err)
	}
	sys.Close()

	replacement, err := ps2stream.Open(ps2stream.Options{
		Region:      region,
		Workers:     2,
		WorkerIndex: ps2stream.WorkerIndexIQTree,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer replacement.Close()
	n, err := replacement.Restore(&snap)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored %d subscriptions\n", n)
	// Output: restored 5 subscriptions
}

// Strategies and worker indexes are plain option values; unknown names
// fail fast at Open.
func ExampleOptions() {
	_, err := ps2stream.Open(ps2stream.Options{
		Region:   ps2stream.NewRegion(-125, 24, -66, 49),
		Strategy: "quadtree", // not one of the seven strategies
	})
	fmt.Println(err)
	// Output: ps2stream: unknown strategy "quadtree"
}
