// Package ps2stream is a distributed publish/subscribe system for
// spatio-textual data streams, reproducing PS2Stream (Chen et al., ICDE
// 2017). Subscribers register continuous queries combining a boolean
// keyword expression with a rectangular region; publishers emit objects
// carrying text and a location; the system routes each object to every
// matching subscription in real time.
//
// Internally the workload is spread over dispatcher, worker, and merger
// tasks (goroutines standing in for the paper's Storm cluster), and
// messages move between tasks in batches of up to Options.BatchSize so the
// publish hot path amortises per-message transfer costs (see
// docs/ARCHITECTURE.md). The distribution strategy is pluggable: the
// paper's hybrid kdt-tree/gridt partitioning (default), three
// text-partitioning baselines and three space-partitioning baselines.
// An adaptive load adjustment controller (Options.Adjust, AdjustNow)
// rebalances workers under live traffic by migrating gridt cells when the
// per-worker load imbalance exceeds a threshold.
//
// Minimal usage:
//
//	sys, _ := ps2stream.Open(ps2stream.Options{
//		Region: ps2stream.NewRegion(-125, 24, -66, 49),
//	})
//	defer sys.Close()
//	sys.Subscribe(ps2stream.Subscription{
//		ID:     1,
//		Query:  "coffee AND brooklyn",
//		Region: ps2stream.RegionAround(40.7, -73.95, 10, 10),
//	})
//	sys.Publish(ps2stream.Message{ID: 9, Text: "best coffee in brooklyn", Lat: 40.71, Lon: -73.95})
//
// # Sliding-window top-k subscriptions
//
// Besides boolean delivery ("every match"), the system supports ranked,
// windowed delivery in the style of "Top-k Spatial-keyword
// Publish/Subscribe Over Sliding Window" (Wang et al., arXiv:1611.03204):
// SubscribeTopK registers a subscription that continuously tracks the k
// most relevant messages published within a trailing time window, where
// relevance combines text overlap, spatial proximity to the region
// centre, and recency decay. Deliveries arrive through Options.OnTopK as
// TopKUpdate events — a message entered the subscription's top-k, or left
// it (displaced by a better one or expired out of the window, in which
// case the top-k is repaired from the retained window automatically):
//
//	sys, _ := ps2stream.Open(ps2stream.Options{
//		Region: ps2stream.NewRegion(-125, 24, -66, 49),
//		OnTopK: func(u ps2stream.TopKUpdate) { fmt.Println(u.Event, u.MessageID) },
//	})
//	sys.SubscribeTopK(ps2stream.Subscription{
//		ID:     2,
//		Query:  "pizza",
//		Region: ps2stream.RegionAround(40.7, -73.95, 10, 10),
//	}, 10, 5*time.Minute)
//
// Top-k subscriptions ride the same hybrid partitioning and dynamic load
// adjustment as boolean ones; their window state migrates together with
// the gridt cells it belongs to.
package ps2stream

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sync/atomic"
	"time"

	"ps2stream/internal/core"
	"ps2stream/internal/geo"
	"ps2stream/internal/hybrid"
	"ps2stream/internal/load"
	"ps2stream/internal/migrate"
	"ps2stream/internal/model"
	"ps2stream/internal/obs"
	"ps2stream/internal/partition"
	"ps2stream/internal/qindex"
	"ps2stream/internal/snapshot"
	"ps2stream/internal/textutil"
	"ps2stream/internal/wire"
)

// Region is a rectangular area in degrees.
type Region struct {
	MinLat, MinLon float64
	MaxLat, MaxLon float64
}

// NewRegion builds a region from longitude/latitude extents (any corner
// order).
func NewRegion(minLon, minLat, maxLon, maxLat float64) Region {
	r := geo.NewRect(minLon, minLat, maxLon, maxLat)
	return Region{MinLat: r.Min.Y, MinLon: r.Min.X, MaxLat: r.Max.Y, MaxLon: r.Max.X}
}

// RegionAround builds a region centred at (lat, lon) with the given side
// lengths in kilometres — the shape of the paper's STS query regions.
func RegionAround(lat, lon, widthKm, heightKm float64) Region {
	r := geo.RectAround(geo.Point{X: lon, Y: lat}, widthKm, heightKm)
	return Region{MinLat: r.Min.Y, MinLon: r.Min.X, MaxLat: r.Max.Y, MaxLon: r.Max.X}
}

func (r Region) rect() geo.Rect {
	return geo.NewRect(r.MinLon, r.MinLat, r.MaxLon, r.MaxLat)
}

// Message is a published spatio-textual object (e.g. a geo-tagged post).
type Message struct {
	// ID identifies the message in delivered matches.
	ID uint64
	// Text is free text; it is tokenised on non-alphanumeric runes.
	Text string
	// Lat/Lon is the message origin.
	Lat, Lon float64
}

// Subscription is a continuous spatio-textual query.
type Subscription struct {
	// ID identifies the subscription; Unsubscribe refers to it. IDs must
	// be unique among live subscriptions.
	ID uint64
	// Query is a boolean keyword expression: "a", "a AND b", "a OR b".
	Query string
	// Region is the area of interest.
	Region Region
	// Subscriber tags deliveries (e.g. a user id).
	Subscriber uint64
}

// Match is a delivery: the message identified by MessageID satisfied the
// subscription identified by SubscriptionID.
type Match struct {
	SubscriptionID uint64
	Subscriber     uint64
	MessageID      uint64
}

// TopKEvent is the kind of a TopKUpdate.
type TopKEvent uint8

// The top-k membership transitions.
const (
	// TopKEntered: the message entered the subscription's top-k.
	TopKEntered TopKEvent = iota
	// TopKLeft: the message left the top-k — displaced by a better
	// message, expired out of the window, or the subscription ended.
	TopKLeft
)

// String implements fmt.Stringer.
func (e TopKEvent) String() string {
	switch e {
	case TopKEntered:
		return "entered"
	case TopKLeft:
		return "left"
	default:
		return fmt.Sprintf("TopKEvent(%d)", uint8(e))
	}
}

// TopKUpdate is a delivery for a sliding-window top-k subscription: the
// message identified by MessageID entered or left the subscription's
// current top-k set. At any quiescent instant the set of messages that
// entered and have not left is exactly the subscription's top-k over the
// trailing window.
type TopKUpdate struct {
	SubscriptionID uint64
	Subscriber     uint64
	MessageID      uint64
	// Score is the message's relevance for the subscription (text overlap
	// × spatial proximity, in (0, 1]), before recency decay.
	Score float64
	// Event says whether the message entered or left the top-k.
	Event TopKEvent
}

// Strategy names a workload distribution algorithm.
type Strategy string

// The seven distribution strategies of the paper's evaluation.
const (
	StrategyHybrid     Strategy = "hybrid"
	StrategyFrequency  Strategy = "frequency"
	StrategyHypergraph Strategy = "hypergraph"
	StrategyMetric     Strategy = "metric"
	StrategyGrid       Strategy = "grid"
	StrategyKDTree     Strategy = "kdtree"
	StrategyRTree      Strategy = "rtree"
)

// builder resolves a Strategy.
func (s Strategy) builder() (partition.Builder, error) {
	switch s {
	case "", StrategyHybrid:
		return hybrid.Builder{}, nil
	case StrategyFrequency, StrategyHypergraph, StrategyMetric,
		StrategyGrid, StrategyKDTree, StrategyRTree:
		return partition.Builders()[string(s)], nil
	default:
		return nil, fmt.Errorf("ps2stream: unknown strategy %q", s)
	}
}

// WorkerIndex names the query-index structure each worker maintains.
// §IV-D adopts GI2 and notes the system "can be extended to adopt other
// index structures"; the alternatives realise that extension point.
type WorkerIndex string

// The available worker index structures.
const (
	// WorkerIndexGI2 is the paper's Grid-Inverted-Index [29] (default).
	// It is the only index supporting DynamicAdjustment, whose migrations
	// move gridt cells.
	WorkerIndexGI2 WorkerIndex = "gi2"
	// WorkerIndexRTree stores query regions in an R-tree: better spatial
	// pruning, no keyword pruning, costlier maintenance.
	WorkerIndexRTree WorkerIndex = "rtree"
	// WorkerIndexIQTree is the IQ-tree [10]: a quadtree with per-node
	// inverted lists; queries are never duplicated across cells.
	WorkerIndexIQTree WorkerIndex = "iqtree"
	// WorkerIndexAPTree is an AP-tree-style index [9]: nodes adaptively
	// choose keyword or space partitioning by a cost model.
	WorkerIndexAPTree WorkerIndex = "aptree"
)

// factory resolves the index constructor; the zero value selects GI2.
func (w WorkerIndex) factory() (core.IndexFactory, error) {
	switch w {
	case "", WorkerIndexGI2:
		return nil, nil // core's default
	case WorkerIndexRTree:
		return func(_ geo.Rect, _ int, _ *textutil.Stats) qindex.Index {
			return qindex.NewRTree(0)
		}, nil
	case WorkerIndexIQTree:
		return func(bounds geo.Rect, _ int, stats *textutil.Stats) qindex.Index {
			return qindex.NewIQTree(bounds, stats, 0, 0)
		}, nil
	case WorkerIndexAPTree:
		return func(bounds geo.Rect, _ int, stats *textutil.Stats) qindex.Index {
			return qindex.NewAPTree(bounds, stats, 0, 0, 0)
		}, nil
	default:
		return nil, fmt.Errorf("ps2stream: unknown worker index %q", w)
	}
}

// Options configures Open.
type Options struct {
	// Region is the monitored space. Required.
	Region Region
	// Workers, Dispatchers, Mergers size the topology (defaults 8/4/2).
	Workers     int
	Dispatchers int
	Mergers     int
	// BatchSize is the number of operations transferred per internal
	// channel send on every hop of the publish path (default 64). Batches
	// fill adaptively and partial batches flush as soon as a stage goes
	// idle, so a large batch size costs no latency on a quiet stream.
	// 1 disables batching (tuple-at-a-time transfer, the pre-batching
	// engine behaviour); use it when comparing against the batched path.
	BatchSize int
	// Strategy selects the distribution algorithm (default hybrid).
	Strategy Strategy
	// WorkerIndex selects the per-worker query index (default GI2).
	WorkerIndex WorkerIndex
	// SeedMessages and SeedSubscriptions, when provided, are analysed by
	// the partitioner to fit the strategy to the expected workload. An
	// empty seed still works: routing falls back to deterministic
	// hashing until statistics exist.
	SeedMessages      []Message
	SeedSubscriptions []Subscription
	// OnMatch receives every match. Called concurrently; must be fast
	// or hand off to a channel.
	OnMatch func(Match)
	// OnTopK receives every top-k membership change of SubscribeTopK
	// subscriptions. Called concurrently from worker tasks while internal
	// locks are held: it must be fast, must not block, and must not call
	// back into the System — hand off to a channel for anything heavier.
	OnTopK func(TopKUpdate)
	// Now supplies timestamps for sliding-window processing (publish
	// instants and expiry). Nil uses time.Now; deterministic replays and
	// tests install a fake clock and drive expiry with AdvanceTopK.
	Now func() time.Time
	// RemoteWorkers places worker tasks on remote psnode processes:
	// each address ("host:port") is dialled at Open (with backoff, so a
	// just-started psnode is fine) and serves worker task 0, 1, … in
	// order; Workers is raised to at least len(RemoteWorkers), and any
	// surplus tasks run in-process. The handshake distributes the grid
	// geometry and sampled term statistics so routing agrees across
	// processes. The full API works with remote workers: dynamic load
	// adjustment (Adjust, AdjustNow) and Repartition migrate grid cells
	// between processes over dedicated control frames, the load
	// detector consumes the nodes' own processing counters, and
	// SubscribeTopK subscriptions reconcile through a window-delta
	// stream the nodes push to this process (see docs/WIRE.md). Start
	// a peer with:
	//
	//	psnode -role worker -listen :7101
	RemoteWorkers []string
	// SpareWorkers reserves extra routing slots for workers that join at
	// runtime via System.AddWorker. The grid geometry is sized over
	// Workers+SpareWorkers slots at Open, so a join never repartitions —
	// the new worker starts empty and the controller (or AddWorker's own
	// rebalance) migrates cells onto it. Requires the hybrid strategy
	// with the GI2 worker index; Workers+SpareWorkers must be ≤ 64.
	SpareWorkers int
	// Recovery enables crash detection and automatic recovery for remote
	// workers (see docs/ARCHITECTURE.md, "Membership and recovery").
	Recovery RecoveryOptions
	// Adjust configures the adaptive load adjustment controller (§V):
	// per-worker load is sampled from the live publish traffic, and when
	// the imbalance exceeds Theta the system migrates hot grid cells to
	// the least-loaded worker while the stream keeps flowing.
	Adjust AdjustOptions
	// AdminAddr, when non-empty, starts an HTTP observability server on
	// the address ("host:port"; ":0" picks a free port — read it back
	// with System.AdminAddr). It serves Prometheus-text metrics on
	// /metrics, the same series as JSON on /statsz, liveness plus
	// role/epoch/build info on /healthz, and net/http/pprof under
	// /debug/pprof/. With Options.RemoteWorkers set, a scrape first
	// refreshes the coordinator's mirror of the remote workers'
	// counters, so one scrape of this process reports cluster-wide
	// per-worker loads and op counts. See docs/ARCHITECTURE.md
	// ("Observability").
	AdminAddr string
	// Logger receives the system's structured event trace — most
	// importantly the adjustment controller's decision trace: every
	// detector check (Debug), every trigger and executed migration
	// (Info), and every routing-fence advance (Debug). Nil disables the
	// trace.
	Logger *slog.Logger
	// DynamicAdjustment enables the §V load adjustment controller
	// (hybrid strategy only).
	//
	// Deprecated: set Adjust.Auto instead. DynamicAdjustment true is
	// equivalent to Adjust.Auto true.
	DynamicAdjustment bool
	// AdjustInterval is the balance check period (default 200ms).
	//
	// Deprecated: set Adjust.Interval instead.
	AdjustInterval time.Duration
}

// RecoveryOptions configures crash detection and recovery for remote
// workers. With Enabled, the coordinator asks each psnode worker for
// heartbeats, mirrors every routed operation in a bounded per-worker op
// log (truncated by periodic drain checkpoints), and on a connection
// failure redials the worker's address with backoff and replays the
// checkpoint state plus the log tail — the stream keeps flowing through
// the surviving workers meanwhile, and the mergers' dedup window
// absorbs replay duplicates.
type RecoveryOptions struct {
	// Enabled turns recovery on. Off (default), a dead remote worker
	// fails the run exactly as before.
	Enabled bool
	// CheckpointInterval is the op-log truncation cadence (default 1s).
	CheckpointInterval time.Duration
	// HeartbeatInterval is the requested node heartbeat cadence; the
	// coordinator's read deadline is 4× this (default 500ms).
	HeartbeatInterval time.Duration
	// RedialTimeout bounds how long a crashed worker may take to come
	// back before the run is declared unrecoverable (default 45s).
	RedialTimeout time.Duration
	// Dir, when non-empty, persists per-worker checkpoint snapshots
	// (worker-<task>.ckpt) for out-of-band restore tooling. Recovery
	// itself replays from memory and does not require it.
	Dir string
}

// AdjustOptions configures the adaptive load adjustment controller
// (hybrid strategy with the GI2 worker index only — migrations move gridt
// cells).
type AdjustOptions struct {
	// Auto runs the controller continuously in the background: every
	// Interval it samples per-worker load from the worker tasks' live
	// traffic (smoothed with an EWMA), and when the load imbalance has
	// exceeded Theta for two consecutive intervals (hysteresis) and the
	// Cooldown since the previous adjustment has elapsed, it migrates
	// hot cells from the most to the least loaded worker. With Auto
	// false the system only adjusts on explicit AdjustNow calls.
	Auto bool
	// Interval is the load sampling/decision period (default 200ms).
	Interval time.Duration
	// Theta is the imbalance trigger threshold on L_max/L_min, the
	// paper's balance constraint σ (default 1.25; must be > 1).
	Theta float64
	// Cooldown is the minimum time between adjustments, letting a
	// migration's effect show up in the smoothed loads before the next
	// decision (default 4×Interval).
	Cooldown time.Duration
}

// AdjustStats reports the adaptive adjustment controller's activity (see
// Stats.Adjust).
type AdjustStats struct {
	// Auto reports whether the background controller is running.
	Auto bool
	// Epoch counts routing-table changes executed so far — one per
	// migrated cell share, so it can exceed Migrations (a Phase II
	// migration record covers every cell of one selection).
	Epoch uint64
	// Checks counts load evaluations; Triggers counts the ones that ran
	// an adjustment; ManualTriggers counts AdjustNow-initiated
	// adjustments; SustainSkips and CooldownSkips count imbalance
	// violations suppressed by hysteresis and cooldown.
	Checks         int64
	Triggers       int64
	ManualTriggers int64
	SustainSkips   int64
	CooldownSkips  int64
	// LastAdjust is when the latest adjustment ran (zero when none has).
	LastAdjust time.Time
	// EWMALoads is the controller's smoothed per-worker load estimate;
	// Imbalance is max/min over it — the value compared against Theta.
	EWMALoads []float64
	Imbalance float64
	// Migrations counts executed cell migrations; CellsMoved,
	// QueriesMoved and BytesMoved aggregate what they carried.
	Migrations   int
	CellsMoved   int
	QueriesMoved int
	BytesMoved   int64
}

// System is a running publish/subscribe instance.
type System struct {
	inner     *core.System
	admin     *obs.Server
	submitted atomic.Int64
	closed    bool
}

// Open builds and starts a system.
func Open(opts Options) (*System, error) {
	b, err := opts.Strategy.builder()
	if err != nil {
		return nil, err
	}
	ixf, err := opts.WorkerIndex.factory()
	if err != nil {
		return nil, err
	}
	bounds := opts.Region.rect()
	if !bounds.Valid() || bounds.Area() == 0 {
		return nil, errors.New("ps2stream: Options.Region must be a non-empty area")
	}
	objs := make([]*model.Object, 0, len(opts.SeedMessages))
	for i := range opts.SeedMessages {
		objs = append(objs, opts.SeedMessages[i].toObject())
	}
	qrys := make([]*model.Query, 0, len(opts.SeedSubscriptions))
	for i := range opts.SeedSubscriptions {
		q, err := opts.SeedSubscriptions[i].toQuery()
		if err != nil {
			return nil, fmt.Errorf("ps2stream: seed subscription %d: %w", opts.SeedSubscriptions[i].ID, err)
		}
		qrys = append(qrys, q)
	}
	sample := partition.NewSample(objs, qrys, bounds, core.Config{}.Costs)
	var onMatch func(model.Match)
	if opts.OnMatch != nil {
		user := opts.OnMatch
		onMatch = func(m model.Match) {
			user(Match{SubscriptionID: m.QueryID, Subscriber: m.Subscriber, MessageID: m.ObjectID})
		}
	}
	var onTopK func(core.TopKUpdate)
	if opts.OnTopK != nil {
		user := opts.OnTopK
		onTopK = func(u core.TopKUpdate) {
			ev := TopKLeft
			if u.Entered {
				ev = TopKEntered
			}
			user(TopKUpdate{
				SubscriptionID: u.QueryID,
				Subscriber:     u.Subscriber,
				MessageID:      u.MsgID,
				Score:          u.Score,
				Event:          ev,
			})
		}
	}
	cfg := core.Config{
		Dispatchers:  opts.Dispatchers,
		Workers:      opts.Workers,
		Mergers:      opts.Mergers,
		BatchSize:    opts.BatchSize,
		Builder:      b,
		IndexFactory: ixf,
		OnMatch:      onMatch,
		OnTopK:       onTopK,
		Clock:        opts.Now,
		Logger:       opts.Logger,
	}
	interval := opts.Adjust.Interval
	if interval <= 0 {
		interval = opts.AdjustInterval // deprecated spelling
	}
	cfg.Adjust = core.AdjustConfig{
		Enabled:   opts.Adjust.Auto || opts.DynamicAdjustment,
		Interval:  interval,
		Sigma:     opts.Adjust.Theta,
		Cooldown:  opts.Adjust.Cooldown,
		Algorithm: migrate.GR,
	}
	// Membership options must be on the config before the workers are
	// dialled: the handshake hello carries the total slot count (spares
	// included) and the heartbeat request.
	cfg.SpareWorkers = opts.SpareWorkers
	cfg.Recovery = core.RecoveryConfig{
		Enabled:            opts.Recovery.Enabled,
		CheckpointInterval: opts.Recovery.CheckpointInterval,
		HeartbeatInterval:  opts.Recovery.HeartbeatInterval,
		RedialTimeout:      opts.Recovery.RedialTimeout,
		Dir:                opts.Recovery.Dir,
	}
	if err := cfg.ConnectRemoteWorkers(opts.RemoteWorkers, sample, wire.Backoff{}); err != nil {
		return nil, fmt.Errorf("ps2stream: %w", err)
	}
	inner, err := core.New(cfg, sample)
	if err != nil {
		for _, tr := range cfg.RemoteWorkers {
			tr.Close()
		}
		return nil, err
	}
	if err := inner.Start(context.Background()); err != nil {
		for _, tr := range cfg.RemoteWorkers {
			tr.Close()
		}
		return nil, err
	}
	sys := &System{inner: inner}
	if opts.AdminAddr != "" {
		admin, err := obs.Serve(opts.AdminAddr, obs.Options{
			Registry: inner.Registry(),
			Role:     "dispatcher",
			Epoch:    inner.RouteEpoch,
			// A scrape of the coordinator reports the whole cluster:
			// fold the remote workers' counters into the registry's
			// mirror first (rate-limited so concurrent scrapes do not
			// stack wire round-trips).
			BeforeScrape: func() { inner.RefreshRemoteStats(500 * time.Millisecond) },
		})
		if err != nil {
			_ = inner.Close()
			return nil, fmt.Errorf("ps2stream: admin server: %w", err)
		}
		sys.admin = admin
	}
	return sys, nil
}

func (m *Message) toObject() *model.Object {
	return &model.Object{
		ID:    m.ID,
		Terms: textutil.Tokenize(m.Text),
		Loc:   geo.Point{X: m.Lon, Y: m.Lat},
	}
}

func (s *Subscription) toQuery() (*model.Query, error) {
	expr, err := model.ParseExpr(s.Query)
	if err != nil {
		return nil, err
	}
	return &model.Query{
		ID:         s.ID,
		Expr:       expr,
		Region:     s.Region.rect(),
		Subscriber: s.Subscriber,
	}, nil
}

// Publish submits a message for matching. It blocks under backpressure.
func (s *System) Publish(m Message) {
	s.submitted.Add(1)
	s.inner.Submit(model.Op{Kind: model.OpObject, Obj: m.toObject()})
}

// Subscribe registers a continuous query.
func (s *System) Subscribe(sub Subscription) error {
	q, err := sub.toQuery()
	if err != nil {
		return err
	}
	s.submitted.Add(1)
	s.inner.Submit(model.Op{Kind: model.OpInsert, Query: q})
	return nil
}

// SubscribeTopK registers a sliding-window top-k subscription: the system
// continuously maintains the k most relevant messages published within
// the trailing window that match the subscription's boolean expression
// and region, and reports membership changes through Options.OnTopK.
// Relevance is text overlap × proximity to the region centre × recency
// decay. Unsubscribe ends the subscription like a boolean one.
//
// Top-k subscriptions work with Options.RemoteWorkers: each node folds
// its window updates into delta batches that reconcile on this
// process's global top-k board (see docs/ARCHITECTURE.md). Only a
// custom remote transport lacking the window-delta wire extension is
// refused, with an error wrapping core.ErrRemoteNeedsStatic.
func (s *System) SubscribeTopK(sub Subscription, k int, window time.Duration) error {
	if k < 1 {
		return fmt.Errorf("ps2stream: SubscribeTopK k must be >= 1, got %d", k)
	}
	if window <= 0 {
		return fmt.Errorf("ps2stream: SubscribeTopK window must be positive, got %v", window)
	}
	if err := s.inner.TopKRemoteSupport(); err != nil {
		return fmt.Errorf("ps2stream: SubscribeTopK: %w", err)
	}
	q, err := sub.toQuery()
	if err != nil {
		return err
	}
	q.TopK = k
	q.Window = window
	s.submitted.Add(1)
	s.inner.Submit(model.Op{Kind: model.OpInsert, Query: q})
	return nil
}

// TopKSet returns the subscription's current top-k message ids in
// ascending id order (empty when the subscription holds nothing). It is a
// point-in-time view; Flush first for a quiescent read.
func (s *System) TopKSet(subscriptionID uint64) []uint64 {
	return s.inner.TopKSet(subscriptionID)
}

// AdvanceTopK forces one synchronous window-expiry sweep: entries older
// than their subscription's window fall out of every top-k and the heaps
// are repaired from the retained window. The system runs this sweep
// periodically on its own; explicit calls are for deterministic tests and
// replays driving a fake Options.Now clock.
func (s *System) AdvanceTopK() {
	s.inner.AdvanceWindows()
}

// Unsubscribe drops a subscription. The full subscription is required
// (§III-B: deletion requests carry the complete query so dispatchers can
// route them).
func (s *System) Unsubscribe(sub Subscription) error {
	q, err := sub.toQuery()
	if err != nil {
		return err
	}
	s.submitted.Add(1)
	s.inner.Submit(model.Op{Kind: model.OpDelete, Query: q})
	return nil
}

// Repartition begins a global load adjustment (§V-B): a fresh instance of
// the configured distribution strategy is fitted to the given sample of
// recent traffic and installed alongside the current one. Existing
// subscriptions keep routing through the old strategy until their
// population decays, then migrate over automatically (with dynamic
// adjustment enabled) or on the next Repartition call. Objects route
// through both strategies during the transition, so no match is lost.
//
// Call it when the traffic distribution has drifted from the sample the
// system was opened with — the paper suggests checking about once per day.
func (s *System) Repartition(recentMessages []Message, recentSubscriptions []Subscription) error {
	objs := make([]*model.Object, 0, len(recentMessages))
	for i := range recentMessages {
		objs = append(objs, recentMessages[i].toObject())
	}
	qrys := make([]*model.Query, 0, len(recentSubscriptions))
	for i := range recentSubscriptions {
		q, err := recentSubscriptions[i].toQuery()
		if err != nil {
			return fmt.Errorf("ps2stream: repartition sample subscription %d: %w",
				recentSubscriptions[i].ID, err)
		}
		qrys = append(qrys, q)
	}
	sample := partition.NewSample(objs, qrys, s.inner.Bounds(), core.Config{}.Costs)
	return s.inner.GlobalRepartition(sample, nil)
}

// AdjustNow forces one synchronous load adjustment evaluation: if the
// current per-worker load imbalance violates Adjust.Theta, hot cells
// migrate to the least-loaded worker before AdjustNow returns, bypassing
// the background controller's hysteresis and cooldown (whose cooldown
// then restarts). It returns the number of migrations executed — 0 when
// the system is already balanced, and always 0 for strategies other than
// hybrid with the GI2 worker index, which cannot migrate.
//
// Use it when the caller knows the workload just shifted (a planned
// failover, a flash event) and waiting out the controller's detection
// latency is undesirable — or to drive adjustment entirely manually with
// Adjust.Auto off.
func (s *System) AdjustNow() int {
	return s.inner.AdjustNow()
}

// AddWorker joins a freshly started psnode worker (addr "host:port")
// into the running system, claiming one of the Options.SpareWorkers
// routing slots. The node is dialled with backoff, handed the grid
// geometry, and an immediate rebalance migrates cells onto it so it
// starts pulling load right away. It returns the worker task number the
// node now serves (usable with DecommissionWorker), or an error when no
// spare slot is free (core.ErrNoSpareSlots) or the dial fails.
func (s *System) AddWorker(addr string) (int, error) {
	return s.inner.AddWorker(addr)
}

// DecommissionWorker gracefully retires a remote worker slot: every
// cell it serves migrates to the remaining active workers (matches keep
// flowing throughout), the node is drained, and the connection closes
// cleanly. The slot is not reusable afterwards; size SpareWorkers for
// the cluster's full membership churn. Decommissioning the last active
// remote worker is refused.
func (s *System) DecommissionWorker(task int) error {
	return s.inner.DecommissionWorker(task)
}

// FinishRepartition completes an in-flight global repartition immediately,
// relocating the remaining old-strategy subscriptions. It returns the
// number relocated (0 when no repartition is in flight). Systems with
// DynamicAdjustment finish automatically once the old population decays;
// others can call this explicitly.
func (s *System) FinishRepartition() int {
	return s.inner.FinishGlobalRepartition()
}

// Checkpoint writes the live subscription population to w in the snapshot
// format, deduplicated and in ascending subscription-id order. The set is
// a point-in-time view; call Flush first (and pause Subscribe/Unsubscribe
// traffic) for an exact cut. The published message stream is stateless
// and is not captured. With Options.RemoteWorkers, subscriptions held
// only by remote workers are not visible here and are omitted.
func (s *System) Checkpoint(w io.Writer) error {
	return snapshot.Write(w, s.inner.Bounds(), s.inner.LiveQueries())
}

// ErrBoundsMismatch is returned by Restore when the snapshot was taken
// over a different monitored region than this system's Options.Region.
// Grid cell ids are relative to the region, so restoring across regions
// would register subscriptions into the wrong cells — they would never
// match. Open a system with the snapshot's region (the error message
// carries both rectangles) and restore there.
var ErrBoundsMismatch = errors.New("ps2stream: snapshot bounds do not match the system's region")

// Restore re-registers every subscription from a snapshot produced by
// Checkpoint, routing them through the dispatchers like fresh Subscribe
// calls. It returns the number of subscriptions restored. The snapshot
// header's bounds must equal this system's region (ErrBoundsMismatch
// otherwise). Restoring onto a system that already holds some of the
// ids is safe (workers ignore duplicate registrations).
func (s *System) Restore(r io.Reader) (int, error) {
	h, qs, err := snapshot.Read(r)
	if err != nil {
		return 0, err
	}
	if b := s.inner.Bounds(); h.Bounds != b {
		return 0, fmt.Errorf("%w: snapshot %v, system %v", ErrBoundsMismatch, h.Bounds, b)
	}
	for _, q := range qs {
		s.submitted.Add(1)
		s.inner.Submit(model.Op{Kind: model.OpInsert, Query: q})
	}
	return len(qs), nil
}

// Flush blocks until every operation submitted so far is fully applied
// end to end: routed by the dispatchers, drained through every worker
// (local queues empty; remote psnode workers acknowledged over the
// wire), and every match those operations produced delivered by the
// mergers — including OnMatch callbacks, which have returned by the
// time Flush does. Stats().Matches read after Flush is therefore exact
// for the flushed operations, on any machine, at any load. Partial
// transfer batches are included: every stage of the batched pipeline
// pushes its buffered tuples as soon as its input goes idle, so a Flush
// after the last Publish observes every submitted operation regardless
// of Options.BatchSize.
func (s *System) Flush() {
	// The drain barrier errors only when a remote hop failed mid-drain;
	// that failure also fails the topology run and surfaces from Close.
	_ = s.inner.Drain(s.submitted.Load())
}

// Stats summarises system metrics.
type Stats struct {
	Processed       int64
	Matches         int64
	Discarded       int64
	MeanLatency     time.Duration
	P99Latency      time.Duration
	ThroughputTPS   float64
	WorkerQueries   []int
	DispatcherBytes int64
	Migrations      int
	// WorkerLoads is each worker's Definition-1 load over the current
	// adjustment window; BalanceFactor is max/min over the positive loads
	// (the paper's σ constraint — 1.0 is perfectly balanced, 0 when idle).
	WorkerLoads   []float64
	BalanceFactor float64
	// Adjust reports the adaptive adjustment controller's activity and
	// its smoothed view of the worker loads.
	Adjust AdjustStats
}

// Stats captures current metrics.
func (s *System) Stats() Stats {
	snap := s.inner.Snapshot()
	return Stats{
		Processed:       snap.Processed,
		Matches:         snap.Matches,
		Discarded:       snap.Discarded,
		MeanLatency:     snap.Latency.Mean,
		P99Latency:      snap.Latency.P99,
		ThroughputTPS:   snap.ThroughputTPS,
		WorkerQueries:   s.inner.WorkerQueryCounts(),
		DispatcherBytes: snap.DispatcherBytes,
		Migrations:      len(snap.Migrations),
		WorkerLoads:     snap.WorkerLoads,
		BalanceFactor:   load.BalanceFactor(snap.WorkerLoads),
		Adjust: AdjustStats{
			Auto:           snap.Adjust.Enabled,
			Epoch:          snap.Adjust.Epoch,
			Checks:         snap.Adjust.Checks,
			Triggers:       snap.Adjust.Triggers,
			ManualTriggers: snap.Adjust.ManualTriggers,
			SustainSkips:   snap.Adjust.SustainSkips,
			CooldownSkips:  snap.Adjust.CooldownSkips,
			LastAdjust:     snap.Adjust.LastAdjust,
			EWMALoads:      snap.Adjust.EWMALoads,
			Imbalance:      snap.Adjust.Imbalance,
			Migrations:     snap.Adjust.Migrations,
			CellsMoved:     snap.Adjust.CellsMoved,
			QueriesMoved:   snap.Adjust.QueriesMoved,
			BytesMoved:     snap.Adjust.BytesMoved,
		},
	}
}

// SubscriptionCount returns the number of live subscriptions currently
// held (deduplicated across workers).
func (s *System) SubscriptionCount() int {
	return len(s.inner.LiveQueries())
}

// AdminAddr returns the bound address of the observability server, or ""
// when Options.AdminAddr was not set.
func (s *System) AdminAddr() string {
	if s.admin == nil {
		return ""
	}
	return s.admin.Addr()
}

// Close drains in-flight work and stops the system.
func (s *System) Close() error {
	if s.closed {
		return errors.New("ps2stream: already closed")
	}
	s.closed = true
	if s.admin != nil {
		_ = s.admin.Close()
	}
	return s.inner.Close()
}
