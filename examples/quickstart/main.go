// Quickstart: subscribe to spatio-textual events and publish messages.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sync"

	"ps2stream"
)

func main() {
	// Collect matches; OnMatch is called concurrently from merger tasks.
	var mu sync.Mutex
	var delivered []ps2stream.Match
	sys, err := ps2stream.Open(ps2stream.Options{
		// Monitor the continental USA.
		Region:  ps2stream.NewRegion(-125, 24, -66, 49),
		Workers: 4,
		OnMatch: func(m ps2stream.Match) {
			mu.Lock()
			delivered = append(delivered, m)
			mu.Unlock()
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// A subscriber wants coffee news around Brooklyn (10 km × 10 km).
	coffee := ps2stream.Subscription{
		ID:         1,
		Subscriber: 1001,
		Query:      "coffee AND brooklyn",
		Region:     ps2stream.RegionAround(40.70, -73.95, 10, 10),
	}
	// Another watches for earthquakes OR wildfires near Los Angeles.
	hazards := ps2stream.Subscription{
		ID:         2,
		Subscriber: 1002,
		Query:      "earthquake OR wildfire",
		Region:     ps2stream.RegionAround(34.05, -118.24, 120, 120),
	}
	for _, sub := range []ps2stream.Subscription{coffee, hazards} {
		if err := sys.Subscribe(sub); err != nil {
			log.Fatal(err)
		}
	}
	// Registration is asynchronous (ops flow through the dispatchers);
	// Flush ensures the subscriptions are routed before publishing.
	sys.Flush()

	// The publisher side: a stream of geo-tagged posts.
	posts := []ps2stream.Message{
		{ID: 1, Text: "new coffee roastery opening in brooklyn heights", Lat: 40.699, Lon: -73.993},
		{ID: 2, Text: "earthquake tremor felt downtown", Lat: 34.05, Lon: -118.25},
		{ID: 3, Text: "best coffee in seattle", Lat: 47.61, Lon: -122.33}, // wrong place
		{ID: 4, Text: "brooklyn pizza slice", Lat: 40.70, Lon: -73.95},    // wrong topic
		{ID: 5, Text: "wildfire smoke over the valley", Lat: 34.20, Lon: -118.40},
	}
	for _, p := range posts {
		sys.Publish(p)
	}
	sys.Flush()

	mu.Lock()
	for _, m := range delivered {
		fmt.Printf("subscriber %d: message %d matched subscription %d\n",
			m.Subscriber, m.MessageID, m.SubscriptionID)
	}
	mu.Unlock()

	st := sys.Stats()
	fmt.Printf("\nprocessed=%d matches=%d discarded=%d mean latency=%v\n",
		st.Processed, st.Matches, st.Discarded, st.MeanLatency)
	if err := sys.Close(); err != nil {
		log.Fatal(err)
	}
}
