// Load shift: demonstrates the dynamic load adjustment of §V. The system
// is built for a workload spread across the whole country; the live stream
// then concentrates on a single metro area, overloading the workers that
// own it. The controller detects the balance violation (L_max/L_min > σ),
// runs Phase I/II, and migrates gridt cells to the least-loaded worker —
// all while matching continues.
//
//	go run ./examples/loadshift
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"
	"time"

	"ps2stream"
	"ps2stream/internal/workload"
)

func main() {
	sys, err := ps2stream.Open(ps2stream.Options{
		Region:  ps2stream.NewRegion(-125, 24, -66, 49),
		Workers: 4,
		Adjust: ps2stream.AdjustOptions{
			Auto:     true,
			Interval: 50 * time.Millisecond,
			Theta:    1.25,
			Cooldown: 150 * time.Millisecond,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Subscriptions all over the hotspot so its cells carry real load.
	rng := rand.New(rand.NewSource(1))
	hotLat, hotLon := 40.7, -74.0 // New York
	for i := 0; i < 400; i++ {
		q := fmt.Sprintf("topic%02d", rng.Intn(40))
		lat := hotLat + rng.NormFloat64()*0.5
		lon := hotLon + rng.NormFloat64()*0.5
		if err := sys.Subscribe(ps2stream.Subscription{
			ID: uint64(i + 1), Subscriber: uint64(i),
			Query:  q,
			Region: ps2stream.RegionAround(lat, lon, 60, 60),
		}); err != nil {
			log.Fatal(err)
		}
	}

	gen := workload.NewGenerator(workload.TweetsUS(), 2)
	nextID := uint64(0)
	publishHot := func(n int) {
		for i := 0; i < n; i++ {
			o := gen.Object()
			nextID++
			// Concentrate traffic on the hotspot and speak its topics.
			text := fmt.Sprintf("topic%02d %s", rng.Intn(40), strings.Join(o.Terms, " "))
			sys.Publish(ps2stream.Message{
				ID:   nextID,
				Text: text,
				Lat:  hotLat + rng.NormFloat64()*0.3,
				Lon:  hotLon + rng.NormFloat64()*0.3,
			})
		}
	}

	fmt.Println("phase 1: concentrated traffic on New York (one worker's territory)...")
	for round := 0; round < 10; round++ {
		publishHot(4000)
		time.Sleep(60 * time.Millisecond) // give the controller windows to observe
	}
	sys.Flush()

	st := sys.Stats()
	fmt.Printf("\nafter the burst:\n")
	fmt.Printf("  processed:   %d tuples\n", st.Processed)
	fmt.Printf("  matches:     %d\n", st.Matches)
	fmt.Printf("  migrations:  %d cell migrations executed by the controller\n", st.Migrations)
	fmt.Printf("  controller:  %d checks, %d triggers (+%d manual), imbalance %.2f, epoch %d\n",
		st.Adjust.Checks, st.Adjust.Triggers, st.Adjust.ManualTriggers, st.Adjust.Imbalance, st.Adjust.Epoch)
	fmt.Printf("  queries/worker: %v (duplicated copies included)\n", st.WorkerQueries)
	if st.Migrations == 0 {
		fmt.Println("  (no migrations: the initial partitioning already balanced the hotspot)")
	} else {
		fmt.Println("  the gridt cells of the hotspot were split/reassigned to idle workers")
	}
	// One synchronous pass for anything the background cadence missed.
	if n := sys.AdjustNow(); n > 0 {
		fmt.Printf("  AdjustNow: %d further migrations on demand\n", n)
	}
	if err := sys.Close(); err != nil {
		log.Fatal(err)
	}
}
