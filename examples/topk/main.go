// Top-k: ranked nearby-post monitoring over a sliding window.
//
// A subscriber asks to be kept posted on the k most relevant recent posts
// near them — not every match, just the current best, continuously
// repaired as better posts arrive and old ones age out of the window.
//
//	go run ./examples/topk
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"ps2stream"
)

func main() {
	// Track each subscription's current top-k from the update stream.
	var mu sync.Mutex
	current := make(map[uint64]map[uint64]float64) // sub → msg → score
	var events []string
	sys, err := ps2stream.Open(ps2stream.Options{
		Region:  ps2stream.NewRegion(-125, 24, -66, 49),
		Workers: 4,
		OnTopK: func(u ps2stream.TopKUpdate) {
			mu.Lock()
			if current[u.SubscriptionID] == nil {
				current[u.SubscriptionID] = make(map[uint64]float64)
			}
			if u.Event == ps2stream.TopKEntered {
				current[u.SubscriptionID][u.MessageID] = u.Score
			} else {
				delete(current[u.SubscriptionID], u.MessageID)
			}
			events = append(events, fmt.Sprintf("sub %d: message %d %s (score %.2f)",
				u.SubscriptionID, u.MessageID, u.Event, u.Score))
			mu.Unlock()
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// "Keep me posted on the 3 most relevant food posts near Brooklyn
	// over the last 30 minutes."
	if err := sys.SubscribeTopK(ps2stream.Subscription{
		ID:         1,
		Subscriber: 1001,
		Query:      "pizza OR tacos OR ramen",
		Region:     ps2stream.RegionAround(40.70, -73.95, 20, 20),
	}, 3, 30*time.Minute); err != nil {
		log.Fatal(err)
	}
	sys.Flush()

	// A stream of geo-tagged posts: the fourth is the closest and most
	// on-topic, so it displaces the weakest of the first three.
	posts := []ps2stream.Message{
		{ID: 1, Text: "pizza pop-up in williamsburg", Lat: 40.71, Lon: -73.96},
		{ID: 2, Text: "ramen night", Lat: 40.65, Lon: -73.99},
		{ID: 3, Text: "tacos truck parked by the bridge", Lat: 40.70, Lon: -73.99},
		{ID: 4, Text: "pizza tacos ramen festival today", Lat: 40.70, Lon: -73.95},
		{ID: 5, Text: "pizza in san francisco", Lat: 37.77, Lon: -122.42}, // too far
	}
	for _, p := range posts {
		sys.Publish(p)
	}
	sys.Flush()

	mu.Lock()
	for _, e := range events {
		fmt.Println(e)
	}
	mu.Unlock()

	// The live set is also queryable directly.
	top := sys.TopKSet(1)
	sort.Slice(top, func(i, j int) bool { return top[i] < top[j] })
	fmt.Printf("\ncurrent top-3 for subscription 1: %v\n", top)
	if err := sys.Close(); err != nil {
		log.Fatal(err)
	}
}
