// Event watch: the paper's first motivating use case — "individual users
// may be interested in events in particular regions, and are keen to
// receive up-to-date messages and photos that originate in the interested
// regions and are relevant to the events."
//
// Subscribers register OR-expressions over event vocabularies scoped to
// city regions; the example replays a generated spatio-textual stream with
// injected incident bursts and prints a live-style feed of deliveries.
//
//	go run ./examples/eventwatch
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"
	"sync"

	"ps2stream"
	"ps2stream/internal/workload"
)

func main() {
	type watch struct {
		city string
		sub  ps2stream.Subscription
	}
	watches := []watch{
		{"New York", ps2stream.Subscription{ID: 1, Subscriber: 11,
			Query: "blackout OR outage", Region: ps2stream.RegionAround(40.71, -74.00, 60, 60)}},
		{"Miami", ps2stream.Subscription{ID: 2, Subscriber: 12,
			Query: "hurricane AND landfall", Region: ps2stream.RegionAround(25.76, -80.19, 200, 200)}},
		{"Seattle", ps2stream.Subscription{ID: 3, Subscriber: 13,
			Query: "protest OR march OR rally", Region: ps2stream.RegionAround(47.61, -122.33, 40, 40)}},
	}

	type delivery struct {
		m    ps2stream.Match
		text string
	}
	var mu sync.Mutex
	texts := map[uint64]string{}
	var feed []delivery
	sys, err := ps2stream.Open(ps2stream.Options{
		Region:  ps2stream.NewRegion(-125, 24, -66, 49),
		Workers: 4,
		OnMatch: func(m ps2stream.Match) {
			mu.Lock()
			feed = append(feed, delivery{m: m, text: texts[m.MessageID]})
			mu.Unlock()
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, w := range watches {
		if err := sys.Subscribe(w.sub); err != nil {
			log.Fatal(err)
		}
	}
	sys.Flush() // ensure watches are registered before the stream starts

	publish := func(m ps2stream.Message) {
		mu.Lock()
		texts[m.ID] = m.Text
		mu.Unlock()
		sys.Publish(m)
	}

	// Interleave background chatter with incident bursts.
	gen := workload.NewGenerator(workload.TweetsUS(), 7)
	rng := rand.New(rand.NewSource(7))
	nextID := uint64(100)
	incidents := []ps2stream.Message{
		{Text: "citywide blackout reported downtown", Lat: 40.72, Lon: -74.00},
		{Text: "power outage on the east side", Lat: 40.73, Lon: -73.98},
		{Text: "hurricane makes landfall south of the city", Lat: 25.60, Lon: -80.30},
		{Text: "rally gathering by the waterfront", Lat: 47.60, Lon: -122.33},
		{Text: "march heading up fifth avenue", Lat: 47.62, Lon: -122.32},
	}
	for i := 0; i < 5000; i++ {
		o := gen.Object()
		nextID++
		publish(ps2stream.Message{ID: nextID, Text: strings.Join(o.Terms, " "), Lat: o.Loc.Y, Lon: o.Loc.X})
		// Occasionally inject an incident report.
		if i%1000 == 500 {
			inc := incidents[rng.Intn(len(incidents))]
			nextID++
			inc.ID = nextID
			publish(inc)
		}
	}
	// Flush the remaining incident types so each watch fires.
	for _, inc := range incidents {
		nextID++
		inc.ID = nextID
		publish(inc)
	}
	sys.Flush()

	mu.Lock()
	fmt.Printf("delivered %d event notifications:\n", len(feed))
	for _, d := range feed {
		var city string
		for _, w := range watches {
			if w.sub.ID == d.m.SubscriptionID {
				city = w.city
			}
		}
		fmt.Printf("  [%s watch] %q\n", city, d.text)
	}
	mu.Unlock()

	st := sys.Stats()
	fmt.Printf("\n%d messages processed, %d matched, %d discarded before reaching a worker\n",
		st.Processed, st.Matches, st.Discarded)
	if err := sys.Close(); err != nil {
		log.Fatal(err)
	}
}
