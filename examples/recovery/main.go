// Recovery: checkpoint the live subscription population, "crash" the
// system, and re-prime a replacement from the snapshot — including a
// different worker count and worker index, since a snapshot is just the
// deduplicated query set and restoring routes every query afresh.
//
//	go run ./examples/recovery
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"

	"ps2stream"
)

func main() {
	usa := ps2stream.NewRegion(-125, 24, -66, 49)

	// ---- Generation 1: a deployment accumulates subscriptions. ----
	gen1, err := ps2stream.Open(ps2stream.Options{Region: usa, Workers: 8})
	if err != nil {
		log.Fatal(err)
	}
	cities := []struct {
		name     string
		lat, lon float64
	}{
		{"nyc", 40.71, -74.00},
		{"la", 34.05, -118.24},
		{"chicago", 41.88, -87.63},
		{"houston", 29.76, -95.37},
		{"miami", 25.76, -80.19},
	}
	topics := []string{"traffic", "weather", "concert", "protest AND downtown", "food OR festival"}
	id := uint64(0)
	for _, c := range cities {
		for _, topic := range topics {
			id++
			if err := gen1.Subscribe(ps2stream.Subscription{
				ID:         id,
				Subscriber: id,
				Query:      topic,
				Region:     ps2stream.RegionAround(c.lat, c.lon, 40, 40),
			}); err != nil {
				log.Fatal(err)
			}
		}
	}
	// Some subscribers leave again.
	gen1.Unsubscribe(ps2stream.Subscription{
		ID: 3, Query: topics[2],
		Region: ps2stream.RegionAround(cities[0].lat, cities[0].lon, 40, 40),
	})
	gen1.Flush()

	// Checkpoint to disk, as a production deployment would on a schedule.
	path := filepath.Join(os.TempDir(), "ps2stream.snap")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := gen1.Checkpoint(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(path)
	fmt.Printf("checkpointed %d subscriptions (%d bytes) to %s\n",
		id-1, info.Size(), path)

	// The process "crashes": all in-memory worker state is gone.
	if err := gen1.Close(); err != nil {
		log.Fatal(err)
	}

	// ---- Generation 2: a replacement restores from the snapshot. ----
	var mu sync.Mutex
	var delivered []ps2stream.Match
	gen2, err := ps2stream.Open(ps2stream.Options{
		Region:      usa,
		Workers:     4,                           // smaller replacement cluster
		WorkerIndex: ps2stream.WorkerIndexIQTree, // different index, same snapshot
		OnMatch: func(m ps2stream.Match) {
			mu.Lock()
			delivered = append(delivered, m)
			mu.Unlock()
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	n, err := gen2.Restore(bytes.NewReader(data))
	if err != nil {
		log.Fatal(err)
	}
	gen2.Flush()
	fmt.Printf("restored %d subscriptions into a %d-worker replacement\n", n, 4)

	// Traffic resumes; restored subscriptions fire immediately.
	posts := []ps2stream.Message{
		{ID: 100, Text: "weather alert: thunderstorms tonight", Lat: 29.76, Lon: -95.37},
		{ID: 101, Text: "surprise concert announced", Lat: 40.71, Lon: -74.00}, // unsubscribed: silent
		{ID: 102, Text: "food truck festival this weekend", Lat: 25.76, Lon: -80.19},
		{ID: 103, Text: "traffic jam on the 405", Lat: 34.05, Lon: -118.24},
	}
	for _, p := range posts {
		gen2.Publish(p)
	}
	gen2.Flush()

	mu.Lock()
	for _, m := range delivered {
		fmt.Printf("subscriber %d: message %d matched subscription %d\n",
			m.Subscriber, m.MessageID, m.SubscriptionID)
	}
	mu.Unlock()
	if err := gen2.Close(); err != nil {
		log.Fatal(err)
	}
	os.Remove(path)
}
