// Ad targeting: the paper's second motivating use case — "business users,
// e.g., Internet advertisers, expect to identify potential customers with
// certain interest at a particular location, based on their spatio-textual
// messages, e.g., restaurant diners in a target zone."
//
// Each campaign is an STS subscription: product keywords + a geofence
// around the advertiser's venues. The example streams synthetic geo-tagged
// posts (the TWEETS-US generator) plus injected purchase-intent posts, and
// reports per-campaign impression counts.
//
//	go run ./examples/adtargeting
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"
	"sync"

	"ps2stream"
	"ps2stream/internal/workload"
)

type campaign struct {
	sub  ps2stream.Subscription
	desc string
}

func main() {
	campaigns := []campaign{
		{desc: "NYC ramen bar: 'ramen AND dinner' within 15km of Manhattan",
			sub: ps2stream.Subscription{ID: 1, Subscriber: 501,
				Query: "ramen AND dinner", Region: ps2stream.RegionAround(40.75, -73.99, 15, 15)}},
		{desc: "SF coffee chain: 'coffee OR espresso' within 25km of SF",
			sub: ps2stream.Subscription{ID: 2, Subscriber: 502,
				Query: "coffee OR espresso", Region: ps2stream.RegionAround(37.77, -122.42, 25, 25)}},
		{desc: "Chicago pizza: 'pizza AND deepdish' within 20km of the Loop",
			sub: ps2stream.Subscription{ID: 3, Subscriber: 503,
				Query: "pizza AND deepdish", Region: ps2stream.RegionAround(41.88, -87.63, 20, 20)}},
	}

	var mu sync.Mutex
	impressions := map[uint64]int{}
	sys, err := ps2stream.Open(ps2stream.Options{
		Region:  ps2stream.NewRegion(-125, 24, -66, 49),
		Workers: 4,
		OnMatch: func(m ps2stream.Match) {
			mu.Lock()
			impressions[m.SubscriptionID]++
			mu.Unlock()
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range campaigns {
		if err := sys.Subscribe(c.sub); err != nil {
			log.Fatal(err)
		}
	}
	sys.Flush() // ensure campaigns are registered before the stream starts

	// Background chatter: synthetic tweets across the US (almost none
	// match the campaigns — they are discarded cheaply at the
	// dispatchers via the H2 check).
	gen := workload.NewGenerator(workload.TweetsUS(), 42)
	nextID := uint64(1000)
	for i := 0; i < 20000; i++ {
		o := gen.Object()
		nextID++
		sys.Publish(ps2stream.Message{
			ID: nextID, Text: strings.Join(o.Terms, " "), Lat: o.Loc.Y, Lon: o.Loc.X,
		})
	}
	// Purchase-intent posts inside and outside the geofences.
	intent := []ps2stream.Message{
		{ID: 1, Text: "amazing ramen dinner tonight", Lat: 40.76, Lon: -73.98}, // hits 1
		{ID: 2, Text: "ramen dinner in queens", Lat: 40.73, Lon: -73.79},       // near edge
		{ID: 3, Text: "need espresso right now", Lat: 37.78, Lon: -122.41},     // hits 2
		{ID: 4, Text: "coffee break by the bay", Lat: 37.80, Lon: -122.27},     // oakland, inside 25km
		{ID: 5, Text: "deepdish pizza with the team", Lat: 41.89, Lon: -87.64}, // hits 3
		{ID: 6, Text: "deepdish pizza cravings", Lat: 34.05, Lon: -118.24},     // LA: outside
		{ID: 7, Text: "dinner was great", Lat: 40.75, Lon: -73.99},             // no keywords
	}
	for _, m := range intent {
		sys.Publish(m)
	}
	sys.Flush()

	fmt.Println("campaign impressions:")
	ids := make([]int, 0, len(campaigns))
	for _, c := range campaigns {
		ids = append(ids, int(c.sub.ID))
	}
	sort.Ints(ids)
	mu.Lock()
	for _, id := range ids {
		var desc string
		for _, c := range campaigns {
			if c.sub.ID == uint64(id) {
				desc = c.desc
			}
		}
		fmt.Printf("  campaign %d: %3d impressions  (%s)\n", id, impressions[uint64(id)], desc)
	}
	mu.Unlock()

	st := sys.Stats()
	fmt.Printf("\nstream: %d posts processed, %d discarded without any campaign keyword (%.1f%%)\n",
		st.Processed, st.Discarded, 100*float64(st.Discarded)/float64(st.Processed))
	fmt.Printf("mean latency %v, p99 %v\n", st.MeanLatency, st.P99Latency)
	if err := sys.Close(); err != nil {
		log.Fatal(err)
	}
}
